"""Tests for the rc interpreter."""

import pytest

from repro.fs import VFS, Namespace
from repro.shell import Interp


@pytest.fixture
def world():
    fs = VFS()
    for d in ("/bin", "/tmp", "/usr/rob/bin/rc", "/usr/rob/tmp", "/lib",
              "/usr/rob/src"):
        fs.mkdir(d, parents=True)
    fs.create("/tmp/data", "alpha\nbeta\ngamma\n")
    fs.create("/usr/rob/src/a.c", "int a;\n")
    fs.create("/usr/rob/src/b.c", "int b;\n")
    fs.create("/usr/rob/src/c.h", "int c;\n")
    return Namespace(fs)


@pytest.fixture
def sh(world):
    return Interp(world, cwd="/usr/rob/src")


def run(sh, src, stdin=""):
    return sh.run(src, stdin)


class TestBasics:
    def test_echo(self, sh):
        assert run(sh, "echo hello world").stdout == "hello world\n"

    def test_status_success(self, sh):
        assert run(sh, "true").status == 0
        assert run(sh, "false").status == 1

    def test_unknown_command(self, sh):
        result = run(sh, "no-such-cmd")
        assert result.status == 1
        assert "not found" in result.stderr

    def test_sequence_last_status(self, sh):
        assert run(sh, "false; true").status == 0

    def test_semicolons_and_newlines(self, sh):
        assert run(sh, "echo a; echo b\necho c").stdout == "a\nb\nc\n"

    def test_parse_error_reported(self, sh):
        result = run(sh, "if(")
        assert result.status == 1
        assert "rc:" in result.stderr


class TestVariables:
    def test_assignment_and_reference(self, sh):
        assert run(sh, "x=world; echo hello $x").stdout == "hello world\n"

    def test_list_variable(self, sh):
        assert run(sh, "l=(a b c); echo $l").stdout == "a b c\n"

    def test_count(self, sh):
        assert run(sh, "l=(a b c); echo $#l").stdout == "3\n"
        assert run(sh, "echo $#undefined").stdout == "0\n"

    def test_flatten(self, sh):
        out = run(sh, 'l=(a b); echo $"l').stdout
        assert out == "a b\n"

    def test_empty_var_vanishes_from_argv(self, sh):
        assert run(sh, "echo a $nothing b").stdout == "a b\n"

    def test_concatenation_scalar(self, sh):
        assert run(sh, "x=5; echo -i$x").stdout == "-i5\n"

    def test_concatenation_distributes(self, sh):
        assert run(sh, "l=(a b); echo pre^$l").stdout == "prea preb\n"

    def test_concatenation_pairwise(self, sh):
        assert run(sh, "a=(1 2); b=(x y); echo $a^$b").stdout == "1x 2y\n"

    def test_null_concatenation_errors(self, sh):
        result = run(sh, "echo -i$missing")
        assert result.status == 1
        assert "null list" in result.stderr

    def test_mismatched_lists_error(self, sh):
        result = run(sh, "a=(1 2); b=(x y z); echo $a^$b")
        assert "mismatched" in result.stderr

    def test_scoped_assignment_restores(self, sh):
        out = run(sh, "x=global; x=local echo $x; echo $x").stdout
        assert out == "local\nglobal\n"

    def test_quoted_text_is_literal(self, sh):
        assert run(sh, "echo '$x | y'").stdout == "$x | y\n"


class TestSubstitution:
    def test_backquote_words(self, sh):
        assert run(sh, "x=`{echo one two}; echo $#x").stdout == "2\n"

    def test_backquote_in_argv(self, sh):
        assert run(sh, "echo `{echo inner}").stdout == "inner\n"

    def test_backquote_strips_newlines(self, sh):
        assert run(sh, "x=`{cat /tmp/data}; echo $#x").stdout == "3\n"

    def test_eval(self, sh):
        assert run(sh, "eval 'x=5; echo' $x; echo $x").stdout.endswith("5\n")

    def test_eval_output_of_command(self, sh):
        """decl's idiom: eval `{help/parse -c} sets variables."""
        sh.ns.write("/bin/emitvars", "echo 'file=/a/b.c' 'line=12'")
        result = run(sh, "eval `{emitvars}; echo $file $line")
        assert result.stdout == "/a/b.c 12\n"


class TestGlobbing:
    def test_relative_glob(self, sh):
        assert run(sh, "echo *.c").stdout == "a.c b.c\n"

    def test_absolute_glob(self, sh):
        assert run(sh, "echo /usr/rob/src/*.c").stdout == \
            "/usr/rob/src/a.c /usr/rob/src/b.c\n"

    def test_no_match_passes_through(self, sh):
        assert run(sh, "echo *.zig").stdout == "*.zig\n"

    def test_quoted_glob_is_literal(self, sh):
        assert run(sh, "echo '*.c'").stdout == "*.c\n"

    def test_charclass(self, sh):
        assert run(sh, "echo [ab].c").stdout == "a.c b.c\n"


class TestPipesRedirs:
    def test_pipeline(self, sh):
        assert run(sh, "cat /tmp/data | grep beta").stdout == "beta\n"

    def test_three_stage_pipeline(self, sh):
        out = run(sh, "cat /tmp/data | grep a | wc -l").stdout
        assert out.strip() == "3"  # alpha, beta, gamma all contain 'a'

    def test_write_redirect(self, sh):
        run(sh, "echo saved > /tmp/out")
        assert sh.ns.read("/tmp/out") == "saved\n"

    def test_append_redirect(self, sh):
        run(sh, "echo one > /tmp/out; echo two >> /tmp/out")
        assert sh.ns.read("/tmp/out") == "one\ntwo\n"

    def test_read_redirect(self, sh):
        assert run(sh, "grep beta < /tmp/data").stdout == "beta\n"

    def test_block_pipe_redirect(self, sh):
        """The decl script's shape: a block piped then redirected."""
        run(sh, "{ echo a; echo b } | sort > /tmp/sorted")
        assert sh.ns.read("/tmp/sorted") == "a\nb\n"

    def test_redirect_to_var_path(self, sh):
        run(sh, "x=7; echo hi > /tmp/file$x")
        assert sh.ns.read("/tmp/file7") == "hi\n"

    def test_stderr_passes_through_pipe(self, sh):
        result = run(sh, "cat /nope | wc -l")
        assert "cat:" in result.stderr


class TestIOLifecycle:
    """Handles and buffered output survive commands that die mid-way."""

    def test_failed_command_still_flushes_redirected_output(self, sh):
        result = run(sh, "{echo partial; cat /absent} > /tmp/out")
        assert result.status == 1
        assert "cat:" in result.stderr
        # what the block wrote before the failure still reaches the file
        assert sh.ns.read("/tmp/out") == "partial\n"

    def test_raising_stage_keeps_its_own_stderr(self, sh):
        # the block's cat diagnostics must survive the redirection
        # blowing up afterwards (/no/such/dir cannot be created)
        result = run(sh, "{cat /absent; echo x > /no/such/dir/f} | wc -l")
        assert result.status == 1
        assert "cat:" in result.stderr   # stage's own diagnostics kept
        assert "rc:" in result.stderr    # and the fatal error reported

    def test_failing_pipeline_flushes_unterminated_ctl_tail(self, sh):
        from repro.fs import SynthDir, SynthFile
        lines = []
        root = SynthDir("srv", list_fn=lambda: [
            SynthFile("ctl", write_fn=lines.append)])
        sh.ns.mkdir("/mnt")
        sh.ns.mount(root, "/mnt")
        result = run(sh, "{echo -n 'tag 1 2'; cat /absent} > /mnt/ctl")
        assert result.status == 1
        assert "cat:" in result.stderr
        # the unterminated final line was flushed when the handle closed
        assert lines == ["tag 1 2"]

    def test_backquote_failure_keeps_diagnostics(self, sh):
        result = run(sh, "x=`{cat /absent}; echo got $x")
        assert "cat:" in result.stderr
        assert result.stdout == "got\n"


class TestControlFlow:
    def test_if_true(self, sh):
        assert run(sh, "if(true) echo yes").stdout == "yes\n"

    def test_if_false(self, sh):
        assert run(sh, "if(false) echo yes").stdout == ""

    def test_if_not(self, sh):
        out = run(sh, "if(false) echo a\nif not echo b").stdout
        assert out == "b\n"

    def test_if_not_skipped_after_success(self, sh):
        out = run(sh, "if(true) echo a\nif not echo b").stdout
        assert out == "a\n"

    def test_match_builtin(self, sh):
        assert run(sh, "if(~ hello h*) echo yes").stdout == "yes\n"
        assert run(sh, "if(~ hello x*) echo yes").stdout == ""

    def test_match_multiple_patterns(self, sh):
        assert run(sh, "if(~ b a b c) echo yes").stdout == "yes\n"

    def test_negated_match(self, sh):
        out = run(sh, "if(! ~ $#list 0) echo nonempty").stdout
        assert out == ""
        out = run(sh, "list=(x); if(! ~ $#list 0) echo nonempty").stdout
        assert out == "nonempty\n"

    def test_for_loop(self, sh):
        assert run(sh, "for(i in 1 2 3) echo $i").stdout == "1\n2\n3\n"

    def test_for_over_glob(self, sh):
        assert run(sh, "for(f in *.c) echo $f").stdout == "a.c\nb.c\n"

    def test_while_loop(self, sh):
        src = "x=(a a a); while(! ~ $#x 0) { echo $#x; x=`{echo $x | sed 's/a //'} }"
        result = run(sh, src)
        assert result.stdout.startswith("3\n2\n1\n")

    def test_switch(self, sh):
        src = """service=terminal
switch($service){
case cpu
\techo heavy
case terminal
\techo light
}"""
        assert run(sh, src).stdout == "light\n"

    def test_switch_glob_patterns(self, sh):
        assert run(sh, "switch(abc){ case a*\necho starts-a\n}").stdout == \
            "starts-a\n"

    def test_switch_no_match(self, sh):
        assert run(sh, "switch(zz){ case a\necho a\n}").stdout == ""

    def test_andor(self, sh):
        assert run(sh, "true && echo yes").stdout == "yes\n"
        assert run(sh, "false || echo fallback").stdout == "fallback\n"
        assert run(sh, "false && echo no").stdout == ""


class TestFunctions:
    def test_define_and_call(self, sh):
        out = run(sh, "fn greet { echo hello $1 }\ngreet rob").stdout
        assert out == "hello rob\n"

    def test_args_star(self, sh):
        out = run(sh, "fn count { echo $#* }\ncount a b c").stdout
        assert out == "3\n"

    def test_profile_fn_idiom(self, sh):
        """fn x { if(! ~ $#* 0) $* } — run args if any were given."""
        src = "fn x { if(! ~ $#* 0) $* }\nx echo ran\nx"
        assert run(sh, src).stdout == "ran\n"

    def test_fn_deletion(self, sh):
        result = run(sh, "fn f { echo x }\nfn f\nf")
        assert "not found" in result.stderr

    def test_fn_args_restored(self, sh):
        out = run(sh, "fn f { echo $1 }\nf inner\necho $#1").stdout
        assert out == "inner\n0\n"


class TestScripts:
    def test_script_from_path(self, sh):
        sh.ns.write("/bin/hello", "echo hello from script")
        assert run(sh, "hello").stdout == "hello from script\n"

    def test_script_by_full_path(self, sh):
        sh.ns.write("/lib/tool", "echo tool $1")
        assert run(sh, "/lib/tool arg").stdout == "tool arg\n"

    def test_script_gets_args(self, sh):
        sh.ns.write("/bin/show", "echo $0: $*")
        assert run(sh, "show a b").stdout == "show: a b\n"

    def test_script_vars_do_not_leak(self, sh):
        sh.ns.write("/bin/setter", "leaky=yes")
        run(sh, "setter")
        assert run(sh, "echo $#leaky").stdout == "0\n"

    def test_run_file(self, sh):
        sh.ns.write("/lib/script", "echo ran with $1")
        result = sh.run_file("/lib/script", ["arg1"])
        assert result.stdout == "ran with arg1\n"

    def test_run_file_missing(self, sh):
        assert sh.run_file("/lib/nope").status == 1

    def test_exit_builtin(self, sh):
        result = run(sh, "echo before; exit 3; echo after")
        assert result.status == 3
        assert result.stdout == "before\n"

    def test_cd(self, sh):
        assert run(sh, "cd /tmp; pwd").stdout == "/tmp\n"
        result = run(sh, "cd /nope")
        assert result.status == 1

    def test_dot_sources_in_current_shell(self, sh):
        sh.ns.write("/lib/profile", "sourced=yes")
        run(sh, ". /lib/profile")
        assert sh.get("sourced") == ["yes"]


class TestPaperProfile:
    def test_profile_executes(self, sh):
        """The Figure 2 profile runs: binds apply to the namespace."""
        sh.ns.write("/usr/rob/bin/rc/mytool", "echo mine")
        sh.set("home", ["/usr/rob"])
        sh.set("service", ["terminal"])
        sh.set("cputype", ["mips"])
        sh.ns.mkdir("/usr/rob/bin/mips", parents=True)
        src = """bind -c $home/tmp /tmp
bind -a $home/bin/rc /bin
bind -a $home/bin/$cputype /bin
switch($service){
case terminal
\tprompt=('g* ' '')
\tsite=plan9
case cpu
\tnews
}
"""
        result = run(sh, src)
        assert result.status == 0
        assert result.stderr == ""
        # the union bind makes the personal tool visible in /bin
        assert run(sh, "mytool").stdout == "mine\n"
        # and /tmp now aliases $home/tmp
        run(sh, "echo x > /tmp/t")
        assert sh.ns.read("/usr/rob/tmp/t") == "x\n"
        assert sh.get("site") == ["plan9"]


class TestSubscripts:
    def test_single_subscript(self, sh):
        assert run(sh, "l=(a b c); echo $l(2)").stdout == "b\n"

    def test_multiple_subscripts(self, sh):
        assert run(sh, "l=(a b c); echo $l(3 1)").stdout == "c a\n"

    def test_out_of_range_empty(self, sh):
        assert run(sh, "l=(a); echo x $l(5) y").stdout == "x y\n"

    def test_subscript_then_text(self, sh):
        assert run(sh, "l=(top mid); echo $l(1)^-level").stdout == "top-level\n"

    def test_paren_not_subscript(self, sh):
        # a non-numeric paren belongs to the grammar, not the var
        assert run(sh, "if(~ $#nothing 0) echo ok").stdout == "ok\n"


class TestMoreBuiltins:
    def test_whatis_function(self, sh):
        run(sh, "fn greet { echo hi }")
        assert run(sh, "whatis greet").stdout == "fn greet\n"

    def test_whatis_variable(self, sh):
        run(sh, "x=(a b)")
        assert run(sh, "whatis x").stdout == "x=(a b)\n"

    def test_whatis_command(self, sh):
        assert run(sh, "whatis echo").stdout == "echo\n"

    def test_whatis_script(self, sh):
        sh.ns.write("/bin/mytool", "echo t")
        assert run(sh, "whatis mytool").stdout == "mytool\n"

    def test_whatis_unknown(self, sh):
        result = run(sh, "whatis nothing-here")
        assert result.status == 1
        assert "not found" in result.stderr

    def test_shift(self, sh):
        sh.ns.write("/bin/shifty", "shift\necho $1 $#*")
        assert run(sh, "shifty a b c").stdout == "b 2\n"

    def test_shift_n(self, sh):
        sh.ns.write("/bin/shifty2", "shift 2\necho $*")
        assert run(sh, "shifty2 a b c d").stdout == "c d\n"

    def test_exit_without_status(self, sh):
        assert run(sh, "exit").status == 0

    def test_exit_bad_status(self, sh):
        assert run(sh, "exit notanumber").status == 1

    def test_cd_no_args_goes_root(self, sh):
        run(sh, "cd /tmp")
        assert run(sh, "cd; pwd").stdout == "/\n"

    def test_dot_missing_file(self, sh):
        result = run(sh, ". /nope")
        assert result.status == 1

    def test_dot_with_parse_error(self, sh):
        sh.ns.write("/lib/badrc", "if( broken")
        result = run(sh, ". /lib/badrc")
        assert result.status == 1
        assert "rc:" in result.stderr

    def test_match_no_args(self, sh):
        assert run(sh, "~").status == 1

    def test_ampersand_runs_synchronously(self, sh):
        # '&' is accepted (scripts use it); execution is synchronous here
        assert run(sh, "echo bg &").stdout == "bg\n"


class TestStatusVariable:
    def test_status_after_success(self, sh):
        assert run(sh, "true; echo $status").stdout == "0\n"

    def test_status_after_failure(self, sh):
        assert run(sh, "false; echo $status").stdout == "1\n"

    def test_status_in_condition(self, sh):
        out = run(sh, "false; if(~ $status 1) echo caught").stdout
        assert out == "caught\n"
