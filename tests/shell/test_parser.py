"""Unit tests for the rc parser."""

import pytest

from repro.shell import ast
from repro.shell.parser import ParseError, parse


def one(src):
    seq = parse(src)
    assert len(seq.commands) == 1, seq
    return seq.commands[0]


class TestSimple:
    def test_words(self):
        cmd = one("echo a b")
        assert isinstance(cmd, ast.Simple)
        assert len(cmd.argv) == 3

    def test_sequence(self):
        seq = parse("a; b\nc")
        assert len(seq.commands) == 3

    def test_trailing_separators(self):
        assert len(parse("a;\n\n").commands) == 1

    def test_empty_program(self):
        assert parse("").commands == []
        assert parse("\n\n").commands == []

    def test_redirections_attach(self):
        cmd = one("a > out >> log < in")
        assert [r.kind for r in cmd.redirs] == [">", ">>", "<"]

    def test_empty_command_fails(self):
        with pytest.raises(ParseError):
            parse(">")


class TestAssignments:
    def test_global_assignment(self):
        cmd = one("x=5")
        assert isinstance(cmd, ast.Simple)
        assert cmd.assigns[0].name == "x"
        assert not cmd.argv

    def test_list_assignment(self):
        cmd = one("prompt=('g* ' '')")
        assert len(cmd.assigns[0].values) == 2

    def test_empty_assignment(self):
        cmd = one("x=")
        assert cmd.assigns[0].values == []

    def test_scoped_assignment(self):
        cmd = one("cppflags=-DX cpp file")
        assert cmd.assigns[0].name == "cppflags"
        assert len(cmd.argv) == 2

    def test_not_an_assignment(self):
        cmd = one("echo a=b")
        assert not cmd.assigns
        assert len(cmd.argv) == 2


class TestPipelinesAndOr:
    def test_pipeline(self):
        cmd = one("a | b | c")
        assert isinstance(cmd, ast.Pipeline)
        assert len(cmd.stages) == 3

    def test_andor(self):
        cmd = one("a && b || c")
        assert isinstance(cmd, ast.AndOr)
        assert [op for op, _ in cmd.rest] == ["&&", "||"]

    def test_bang(self):
        cmd = one("! grep x f")
        assert isinstance(cmd, ast.Not)

    def test_pipeline_across_lines(self):
        cmd = one("a |\nb")
        assert isinstance(cmd, ast.Pipeline)

    def test_block_in_pipeline(self):
        cmd = one("{ echo a; echo b } | cat")
        assert isinstance(cmd, ast.Pipeline)
        assert isinstance(cmd.stages[0], ast.Block)

    def test_block_with_redirect(self):
        cmd = one("{ echo a } > f")
        assert isinstance(cmd, ast.Block)
        assert cmd.redirs[0].kind == ">"


class TestControlFlow:
    def test_if(self):
        cmd = one("if(~ $x y) echo yes")
        assert isinstance(cmd, ast.If)
        assert isinstance(cmd.body, ast.Simple)

    def test_if_not(self):
        seq = parse("if(a) b\nif not c")
        assert isinstance(seq.commands[0], ast.If)
        assert isinstance(seq.commands[1], ast.IfNot)

    def test_if_with_block(self):
        cmd = one("if(true) { a; b }")
        assert isinstance(cmd.body, ast.Block)

    def test_for_with_in(self):
        cmd = one("for(f in a b c) echo $f")
        assert isinstance(cmd, ast.For)
        assert cmd.var == "f"
        assert len(cmd.words) == 3

    def test_for_default_args(self):
        cmd = one("for(f) echo $f")
        assert cmd.words is None

    def test_while(self):
        cmd = one("while(test) work")
        assert isinstance(cmd, ast.While)

    def test_switch(self):
        cmd = one("""switch($service){
case terminal
    echo t
case cpu gateway
    echo c
}""")
        assert isinstance(cmd, ast.Switch)
        assert len(cmd.cases) == 2
        assert len(cmd.cases[1].patterns) == 2

    def test_switch_empty_case_body(self):
        cmd = one("switch(x){ case a\ncase b\necho b\n}")
        assert cmd.cases[0].body.commands == []

    def test_case_outside_braces_fails(self):
        with pytest.raises(ParseError, match="case"):
            parse("switch(x){ echo y }")

    def test_fn_definition(self):
        cmd = one("fn greet { echo hi }")
        assert isinstance(cmd, ast.FnDef)
        assert cmd.name == "greet"
        assert cmd.body is not None

    def test_fn_deletion(self):
        cmd = one("fn greet")
        assert cmd.body is None


class TestPaperScripts:
    def test_decl_script_parses(self):
        """The complete decl script from the paper (transliterated)."""
        src = """eval `{help/parse -c}
x=`{cat /mnt/help/new/ctl}
{
\techo a
\techo $dir/' Close! '
} | help/buf > /mnt/help/$x/ctl
cpp $cppflags $file |
help/rcc -w -g -i$id -n$line |
sed 1q |
cat > /mnt/help/$x/bodyapp
"""
        seq = parse(src)
        assert len(seq.commands) == 4

    def test_profile_parses(self):
        """The profile fragment visible in Figure 2."""
        src = """bind -c $home/tmp /tmp
bind -a $home/bin/rc /bin
bind -a $home/bin/$cputype /bin
fn x { if(! ~ $#* 0) $* }
switch($service){
case terminal
\tprompt=('g* ' '')
\tsite=plan9
case cpu
\tbind -b /mnt/term/mnt/8.5 /dev
\tnews
}
fortune
"""
        seq = parse(src)
        assert len(seq.commands) == 6
