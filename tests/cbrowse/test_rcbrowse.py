"""Tests for the rc-script browser (the second-language claim)."""

import pytest

from repro import build_system
from repro.cbrowse.rcbrowse import parse_rc_program
from repro.fs import VFS, Namespace

LIB_RC = """fn fail { echo $* ; exit 1 }
fn banner { echo ==== $1 ==== }
logfile=/tmp/log
"""

DEPLOY_RC = """target=production
banner starting
if(~ $target production) {
\techo deploying to $target >> $logfile
}
if not fail unknown target $target
banner done
"""


@pytest.fixture
def ns():
    fs = VFS()
    fs.mkdir("/scripts", parents=True)
    fs.create("/scripts/lib.rc", LIB_RC)
    fs.create("/scripts/deploy.rc", DEPLOY_RC)
    return Namespace(fs)


class TestRcParse:
    def test_fn_declared(self, ns):
        program = parse_rc_program(ns, ["/scripts/lib.rc"])
        decl = program.declaration_of("fail")
        assert decl.kind == "func"
        assert decl.location == "lib.rc:1"

    def test_var_declared(self, ns):
        program = parse_rc_program(ns, ["/scripts/lib.rc"])
        assert program.declaration_of("logfile").location == "lib.rc:3"

    def test_uses_across_files(self, ns):
        program = parse_rc_program(
            ns, ["/scripts/lib.rc", "/scripts/deploy.rc"],
            base_dir="/scripts")
        locations = [u.location for u in program.uses_of("banner")]
        assert "lib.rc:2" in locations       # the definition
        assert "deploy.rc:2" in locations    # first call
        assert "deploy.rc:7" in locations    # second call

    def test_var_uses(self, ns):
        program = parse_rc_program(
            ns, ["/scripts/lib.rc", "/scripts/deploy.rc"],
            base_dir="/scripts")
        locations = {u.location for u in program.uses_of("logfile")}
        assert "lib.rc:3" in locations
        assert "deploy.rc:4" in locations

    def test_for_variable_declared(self, ns):
        ns.write("/scripts/loop.rc", "for(host in a b c) echo $host\n")
        program = parse_rc_program(ns, ["/scripts/loop.rc"])
        assert program.declaration_of("host") is not None

    def test_unparsable_script_recorded(self, ns):
        ns.write("/scripts/broken.rc", "if( oops\n")
        program = parse_rc_program(ns, ["/scripts/broken.rc"])
        assert "/scripts/broken.rc" in program.missing_includes

    def test_empty_program(self, ns):
        assert parse_rc_program(ns, []).decls == []


class TestRcBrowserCommands:
    @pytest.fixture
    def system(self, ns):
        system = build_system(extra_tools=True)
        system.ns.mkdir("/scripts", parents=True)
        system.ns.write("/scripts/lib.rc", LIB_RC)
        system.ns.write("/scripts/deploy.rc", DEPLOY_RC)
        return system

    def test_rdecl_command(self, system):
        shell = system.shell("/scripts")
        result = shell.run("help-rdecl -ifail lib.rc deploy.rc")
        assert result.stdout == "lib.rc:1\n"

    def test_ruses_command(self, system):
        shell = system.shell("/scripts")
        result = shell.run("help-ruses -ibanner lib.rc deploy.rc")
        assert "deploy.rc:2" in result.stdout

    def test_rdecl_unknown(self, system):
        shell = system.shell("/scripts")
        assert shell.run("help-rdecl -ighost lib.rc").status == 1

    def test_usage_errors(self, system):
        shell = system.shell("/scripts")
        assert shell.run("help-rdecl lib.rc").status == 1
        assert shell.run("help-ruses -ix").status == 1

    def test_rcb_tool_loads_at_boot(self, system):
        assert system.help.window_by_name("/help/rcb/stf") is not None

    def test_rcb_tool_end_to_end(self, system):
        """Point at a function name in a script window, click rdecl:
        the definition opens — zero new UI code for a new language."""
        h = system.help
        deploy_w = h.open_path("/scripts/deploy.rc")
        pos = deploy_w.body.string().index("banner") + 2
        h.point_at(deploy_w, pos)
        h.execute_text(h.window_by_name("/help/rcb/stf"), "rdecl")
        lib_w = h.window_by_name("/scripts/lib.rc")
        assert lib_w is not None
        assert lib_w.body.line_of(lib_w.org) == 2  # fn banner's line

    def test_rcb_ruses_window(self, system):
        h = system.help
        deploy_w = h.open_path("/scripts/deploy.rc")
        pos = deploy_w.body.string().index("$logfile") + 3
        h.point_at(deploy_w, pos)
        h.execute_text(h.window_by_name("/help/rcb/stf"), "ruses")
        uses_w = next(w for w in h.windows.values()
                      if w.name() == "/scripts/"
                      and "logfile" not in w.name()
                      and "lib.rc:3" in w.body.string())
        assert "deploy.rc:4" in uses_w.body.string()

    def test_default_boot_excludes_rcb(self):
        system = build_system()
        assert system.help.window_by_name("/help/rcb/stf") is None
