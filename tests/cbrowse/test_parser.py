"""Tests for the scope-tracking C parser."""

import pytest

from repro.cbrowse import parse_program, parse_source
from repro.fs import VFS, Namespace


def decls(program, kind=None):
    return [(d.name, d.kind, d.line) for d in program.decls
            if kind is None or d.kind == kind]


class TestDeclarations:
    def test_global_variable(self):
        p = parse_source("int n = 0;\n", "a.c")
        assert ("n", "var", 1) in decls(p)

    def test_pointer_and_multiple_declarators(self):
        p = parse_source("char *s, buf[128], **argv;\n", "a.c")
        names = [d.name for d in p.decls]
        assert names == ["s", "buf", "argv"]

    def test_function_definition(self):
        p = parse_source("void f(int a, char *b) { }\n", "a.c")
        assert ("f", "func", 1) in decls(p)
        assert ("a", "param", 1) in decls(p)
        assert ("b", "param", 1) in decls(p)

    def test_prototype(self):
        p = parse_source("int strlen(char *s);\n", "a.c")
        assert ("strlen", "func", 1) in decls(p)

    def test_local_variable(self):
        p = parse_source("void f(void) { int x; x = 1; }\n", "a.c")
        assert ("x", "local", 1) in decls(p)

    def test_typedef(self):
        p = parse_source("typedef struct Text Text;\nText *t;\n", "dat.h")
        assert ("Text", "typedef", 1) in decls(p)
        assert ("t", "var", 2) in decls(p)

    def test_typedef_used_as_type_is_use(self):
        p = parse_source("typedef int Num;\nNum x;\n", "a.c")
        uses = [(u.name, u.line) for u in p.uses]
        assert ("Num", 2) in uses

    def test_struct_with_members(self):
        p = parse_source("struct Page {\n\tint n;\n\tchar *text;\n};\n", "dat.h")
        assert ("Page", "tag", 1) in decls(p)
        assert ("n", "member", 2) in decls(p)
        assert ("text", "member", 3) in decls(p)

    def test_enum_constants(self):
        p = parse_source("enum { Alpha, Beta = 2, Gamma };\n", "a.c")
        names = [d.name for d in p.decls if d.kind == "enum"]
        assert names == ["Alpha", "Beta", "Gamma"]

    def test_extern_declaration(self):
        p = parse_source("extern int n;\n", "dat.h")
        assert ("n", "var", 1) in decls(p)

    def test_macro_define(self):
        p = parse_source("#define NBUF 128\nint x;\n", "a.c")
        assert ("NBUF", "macro", 1) in decls(p)

    def test_function_like_macro(self):
        p = parse_source("#define MAX(a,b) ((a)>(b)?(a):(b))\n", "a.c")
        assert ("MAX", "macro", 1) in decls(p)

    def test_kr_function(self):
        src = "main(argc, argv)\nint argc;\nchar *argv[];\n{\n\targc = 0;\n}\n"
        p = parse_source(src, "a.c")
        assert ("main", "func", 1) in decls(p)
        assert ("argc", "param", 1) in decls(p)
        # the body use of argc binds to the parameter
        use = next(u for u in p.uses if u.name == "argc" and u.line == 5)
        assert use.decl.kind == "param"


class TestBinding:
    def test_use_binds_to_global(self):
        p = parse_source("int n;\nvoid f(void) { n = 1; }\n", "a.c")
        use = next(u for u in p.uses if u.name == "n")
        assert use.decl.kind == "var"
        assert use.decl.line == 1

    def test_local_shadows_global(self):
        """The precision claim: the local n is a different n."""
        src = ("int n;\n"
               "void f(void) { int n; n = 1; }\n"
               "void g(void) { n = 2; }\n")
        p = parse_source(src, "a.c")
        f_use = next(u for u in p.uses if u.name == "n" and u.line == 2)
        g_use = next(u for u in p.uses if u.name == "n" and u.line == 3)
        assert f_use.decl.kind == "local"
        assert g_use.decl.kind == "var"

    def test_param_shadows_global(self):
        src = "int s;\nvoid f(int s) { s = 1; }\n"
        p = parse_source(src, "a.c")
        use = next(u for u in p.uses if u.name == "s" and u.line == 2)
        assert use.decl.kind == "param"

    def test_member_access_not_a_use(self):
        src = "struct P { int n; };\nint n;\nvoid f(struct P *p) { p->n = n; }\n"
        p = parse_source(src, "a.c")
        uses_of_n = [u for u in p.uses if u.name == "n" and u.line == 3]
        # only the rhs n counts; p->n is a member access
        assert len(uses_of_n) == 1
        assert uses_of_n[0].decl.kind == "var"

    def test_call_is_a_use(self):
        src = "int strlen(char *s);\nvoid f(char *x) { strlen(x); }\n"
        p = parse_source(src, "a.c")
        use = next(u for u in p.uses if u.name == "strlen" and u.line == 2)
        assert use.decl.kind == "func"

    def test_undeclared_is_unresolved(self):
        p = parse_source("void f(void) { mystery(); }\n", "a.c")
        assert [u.name for u in p.unresolved()] == ["mystery"]

    def test_goto_label_not_a_use(self):
        src = "void f(void) { goto Again; Again: return; }\n"
        p = parse_source(src, "a.c")
        assert not [u for u in p.uses if u.name == "Again"]

    def test_scope_closes_at_brace(self):
        src = ("void f(void) { int x; }\n"
               "void g(void) { x = 1; }\n")
        p = parse_source(src, "a.c")
        use = next(u for u in p.uses if u.name == "x" and u.line == 2)
        assert use.decl is None  # the local x is out of scope


class TestQueries:
    def test_declaration_of_at_use_site(self):
        src = ("int n;\n"
               "void f(void) { int n; n = 1; }\n")
        p = parse_source(src, "a.c")
        local = p.declaration_of("n", "a.c", 2)
        assert local.kind == "local"

    def test_declaration_of_pointing_at_decl(self):
        p = parse_source("int n;\n", "a.c")
        assert p.declaration_of("n", "a.c", 1).kind == "var"

    def test_declaration_of_fallback_prefers_global(self):
        src = "void f(void) { int n; }\nint n;\n"
        p = parse_source(src, "a.c")
        assert p.declaration_of("n").kind == "var"

    def test_declaration_of_unknown(self):
        assert parse_source("int x;", "a.c").declaration_of("zz") is None

    def test_uses_of_includes_decl_site(self):
        src = "int n;\nvoid f(void) { n = 1; n = 2; }\n"
        p = parse_source(src, "a.c")
        locations = [u.location for u in p.uses_of("n", "a.c", 2)]
        assert locations == ["a.c:1", "a.c:2"]  # decl + (deduped) uses

    def test_uses_of_excludes_shadowed(self):
        src = ("int n;\n"
               "void f(void) { int n; n = 1; }\n"
               "void g(void) { n = 2; }\n")
        p = parse_source(src, "a.c")
        locations = [u.location for u in p.uses_of("n", "a.c", 3)]
        assert "a.c:2" not in locations
        assert "a.c:3" in locations

    def test_declarations_in_file(self):
        p = parse_source("int a;\nint b;\n", "x.c")
        assert [d.name for d in p.declarations_in("x.c")] == ["a", "b"]


class TestIncludes:
    @pytest.fixture
    def world(self):
        fs = VFS()
        fs.mkdir("/src", parents=True)
        fs.mkdir("/sys/include", parents=True)
        fs.create("/sys/include/libc.h", "int strlen(char *s);\n")
        fs.create("/src/dat.h", "extern int n;\ntypedef struct T T;\n")
        fs.create("/src/a.c",
                  '#include <libc.h>\n#include "dat.h"\n'
                  "void f(void) { n = strlen(\"x\"); }\n")
        fs.create("/src/b.c", '#include "dat.h"\nvoid g(void) { n = 2; }\n')
        return Namespace(fs)

    def test_quoted_include_resolved_with_dot_label(self, world):
        p = parse_program(world, ["/src/a.c"])
        decl = p.declaration_of("n")
        assert decl.file == "./dat.h"
        assert decl.line == 1

    def test_angle_include_resolved(self, world):
        p = parse_program(world, ["/src/a.c"])
        assert p.declaration_of("strlen") is not None

    def test_missing_angle_include_recorded(self, world):
        world.write("/src/c.c", "#include <u.h>\nint x;\n")
        p = parse_program(world, ["/src/c.c"])
        assert "<u.h>" in p.missing_includes
        assert p.declaration_of("x") is not None

    def test_header_parsed_once_across_units(self, world):
        p = parse_program(world, ["/src/a.c", "/src/b.c"])
        n_decls = [d for d in p.decls if d.name == "n"]
        assert len(n_decls) == 1

    def test_uses_merge_across_units(self, world):
        p = parse_program(world, ["/src/a.c", "/src/b.c"])
        locations = [u.location for u in p.uses_of("n")]
        assert locations == ["./dat.h:1", "a.c:3", "b.c:2"]

    def test_missing_quoted_include_recorded(self, world):
        world.write("/src/d.c", '#include "gone.h"\nint y;\n')
        p = parse_program(world, ["/src/d.c"])
        assert "/src/gone.h" in p.missing_includes

    def test_empty_program(self, world):
        assert parse_program(world, []).decls == []
