"""Tests for the C tokenizer."""

import pytest

from repro.cbrowse.lexer import CLexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)]


class TestTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("int n;") == [("keyword", "int"), ("ident", "n"),
                                   ("punct", ";")]

    def test_numbers(self):
        assert kinds("0x1f 42 3.14 1e-5")[0] == ("number", "0x1f")
        assert [k for k, _ in kinds("0x1f 42 3.14 1e-5")] == ["number"] * 4

    def test_strings_and_chars(self):
        toks = tokenize('"a string" \'c\'')
        assert toks[0].kind == "string"
        assert toks[1].kind == "char"

    def test_string_with_escapes(self):
        toks = tokenize(r'"a \"quoted\" string"')
        assert len(toks) == 1

    def test_multichar_punct(self):
        assert [t for _, t in kinds("a->b == c && d++")] == \
            ["a", "->", "b", "==", "c", "&&", "d", "++"]

    def test_three_char_punct(self):
        assert ("punct", "<<=") in kinds("x <<= 2;")


class TestComments:
    def test_block_comment_skipped(self):
        assert kinds("a /* comment */ b") == [("ident", "a"), ("ident", "b")]

    def test_line_comment_skipped(self):
        assert kinds("a // rest\nb") == [("ident", "a"), ("ident", "b")]

    def test_multiline_comment_counts_lines(self):
        toks = tokenize("/* one\ntwo\nthree */ x")
        assert toks[0].line == 3

    def test_unterminated_comment(self):
        with pytest.raises(CLexError):
            tokenize("/* oops")

    def test_unterminated_string(self):
        with pytest.raises(CLexError):
            tokenize('"oops')


class TestCoordinates:
    def test_lines_counted(self):
        toks = tokenize("int a;\nint b;\n\nint c;\n", file="x.c")
        lines = {t.text: t.line for t in toks if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_file_label(self):
        assert tokenize("x", file="dat.h")[0].file == "dat.h"


class TestPreprocessor:
    def test_include_is_cpp_token(self):
        toks = tokenize('#include "dat.h"\nint x;\n')
        assert toks[0].kind == "cpp"
        assert toks[0].text == '#include "dat.h"'

    def test_define_with_continuation(self):
        toks = tokenize("#define BIG \\\n 100\nint x;")
        assert toks[0].kind == "cpp"
        assert "100" in toks[0].text
        assert toks[1].text == "int"

    def test_hash_mid_line_not_cpp(self):
        # '#' after tokens on a line is stringize, not a directive
        toks = tokenize("a # b")
        assert toks[1] == toks[1].__class__("punct", "#", "<stdin>", 1)
