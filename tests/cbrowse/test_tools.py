"""Tests for the cpp/rcc/cuses/cdecls shell commands."""

import pytest

from repro.cbrowse.tools import apply_line_markers, parse_marked_source
from repro.cbrowse.lexer import tokenize
from repro.fs import VFS, Namespace
from repro.shell import Interp


@pytest.fixture
def sh():
    fs = VFS()
    fs.mkdir("/src", parents=True)
    fs.mkdir("/inc", parents=True)
    fs.create("/src/dat.h", "extern int n;\n")
    fs.create("/inc/extra.h", "extern int m;\n")
    fs.create("/src/a.c",
              '#include "dat.h"\n#include "extra.h"\n'
              "void f(void) { n = m; }\n")
    interp = Interp(Namespace(fs), cwd="/src")
    from repro.cbrowse.tools import CBROWSE_COMMANDS
    interp.commands["cpp"] = CBROWSE_COMMANDS["cpp"]
    interp.commands["rcc"] = CBROWSE_COMMANDS["rcc"]
    interp.commands["cuses"] = CBROWSE_COMMANDS["cuses"]
    interp.commands["cdecls"] = CBROWSE_COMMANDS["cdecls"]
    return interp


class TestCpp:
    def test_inlines_quoted_include(self, sh):
        out = sh.run("cpp a.c").stdout
        assert 'extern int n;' in out
        assert '#line 1 "./dat.h"' in out
        assert '#line 2 "a.c"' in out  # resume marker after the include

    def test_include_dirs_flag(self, sh):
        out = sh.run("cpp -I/inc a.c").stdout
        assert "extern int m;" in out

    def test_missing_include_skipped(self, sh):
        result = sh.run("cpp a.c")  # extra.h not found without -I
        assert result.status == 0
        assert "extern int m;" not in result.stdout

    def test_no_input(self, sh):
        assert sh.run("cpp -w").status == 1

    def test_missing_file(self, sh):
        assert sh.run("cpp ghost.c").status == 1

    def test_double_include_once(self, sh):
        sh.ns.write("/src/b.c", '#include "dat.h"\n#include "dat.h"\nint x;\n')
        out = sh.run("cpp b.c").stdout
        assert out.count("extern int n;") == 1


class TestLineMarkers:
    def test_apply_markers(self):
        source = ('#line 1 "main.c"\n'
                  "int a;\n"
                  '#line 1 "./hdr.h"\n'
                  "int b;\n"
                  '#line 3 "main.c"\n'
                  "int c;\n")
        tokens = apply_line_markers(tokenize(source))
        coords = {t.text: (t.file, t.line) for t in tokens
                  if t.kind == "ident"}
        assert coords["a"] == ("main.c", 1)
        assert coords["b"] == ("./hdr.h", 1)
        assert coords["c"] == ("main.c", 3)

    def test_unmarked_source_untouched(self):
        tokens = apply_line_markers(tokenize("int a;\n", "orig.c"))
        assert tokens[1].file == "orig.c"

    def test_parse_marked_source_main_file(self):
        source = '#line 1 "thing.c"\nint q;\n'
        program, main_file = parse_marked_source(source)
        assert main_file == "thing.c"
        assert program.declaration_of("q").file == "thing.c"


class TestRcc:
    def test_finds_declaration(self, sh):
        result = sh.run("cpp -I/inc a.c | rcc -w -g -in -n3")
        assert result.stdout == "./dat.h:1\n"

    def test_finds_other_header(self, sh):
        result = sh.run("cpp -I/inc a.c | rcc -im -n3")
        assert result.stdout == "./extra.h:1\n"

    def test_undeclared(self, sh):
        result = sh.run("cpp a.c | rcc -izzz")
        assert result.status == 1
        assert "not declared" in result.stderr

    def test_usage(self, sh):
        assert sh.run("echo x | rcc").status == 1
        assert sh.run("echo x | rcc -nbogus -iq").status == 1
        assert sh.run("echo x | rcc --badflag -iq").status == 1


class TestCuses:
    def test_lists_references(self, sh):
        result = sh.run("cuses -in -fa.c -n3 a.c")
        assert "./dat.h:1" in result.stdout
        assert "a.c:3" in result.stdout

    def test_usage(self, sh):
        assert sh.run("cuses a.c").status == 1
        assert sh.run("cuses -in").status == 1
        assert sh.run("cuses -in -nx a.c").status == 1

    def test_unknown_identifier(self, sh):
        result = sh.run("cuses -ighost a.c")
        assert result.status == 1


class TestCdecls:
    def test_lists_declarations(self, sh):
        result = sh.run("cdecls a.c")
        assert "./dat.h:1 var n" in result.stdout
        assert "a.c:3 func f" in result.stdout

    def test_usage(self, sh):
        assert sh.run("cdecls").status == 1
