"""Loadgen: deterministic schedules, topology-invariant traffic, SLOs.

The fleet must be a *measurement instrument*: the same seed produces a
byte-identical schedule and identical op-class counts whether the
traffic lands on one host or a 4-shard router, errors from a staged
fault storm are accounted separately from real failures, and a slowed
handler turns the benchgate SLO audit red.  Small user counts over
in-memory pipes keep the suite fast; the 1000-user TCP soak lives in
``benchmarks/test_perf_loadgen.py``.
"""

import time

import pytest

from repro.serve import input_line
from repro.tools import benchgate, loadgen
from repro.tools.loadgen import (LoadGen, TrafficModel, build_models,
                                 plan_user, schedule, schedule_crc,
                                 schedule_text, validate)


@pytest.fixture(scope="module")
def models():
    """The recorded Figures 5-12 traffic models (built once)."""
    return build_models()


def tiny_models(records: int = 4) -> list[TrafficModel]:
    """A synthetic one-model mix for tests that need exact op counts."""
    lines = tuple(input_line("type", (f"x{i}",)) for i in range(records))
    return [TrafficModel("tiny", 1.0, lines)]


class TestSchedule:
    def test_same_seed_is_byte_identical(self, models):
        first = schedule_text(schedule(42, 50, models))
        second = schedule_text(schedule(42, 50, models))
        assert first == second

    def test_crc_witnesses_the_schedule(self, models):
        a = schedule_crc(schedule(42, 50, models))
        b = schedule_crc(schedule(42, 50, models))
        assert a == b
        assert a != schedule_crc(schedule(43, 50, models))

    def test_different_seeds_differ(self, models):
        assert (schedule_text(schedule(1, 20, models))
                != schedule_text(schedule(2, 20, models)))

    def test_plans_are_pure_functions_of_seed_and_uid(self, models):
        one = plan_user(7, 13, models)
        two = plan_user(7, 13, models)
        assert one == two

    def test_weighted_mix_spreads_over_models(self, models):
        chosen = {p.model for p in schedule(42, 200, models)}
        assert len(chosen) >= 4  # the mix really mixes

    def test_every_plan_writes_and_reads(self, models):
        for plan in schedule(42, 30, models):
            kinds = {op for op, _ in plan.steps}
            assert "write" in kinds and "read" in kinds

    def test_wake_cohort_is_never_empty(self):
        # even one user: somebody must return or the wake op class
        # (and its SLO) would gate nothing
        plans = schedule(42, 1, tiny_models())
        assert any(p.wake for p in plans)


class TestDeterministicTraffic:
    def run_fleet(self, models, *, shards=0, seed=11, users=10):
        lg = LoadGen(users=users, shards=shards, seed=seed, workers=4,
                     transport="pipe", models=models)
        return lg.run()

    def test_two_runs_same_seed_identical_op_counts(self, models):
        first = self.run_fleet(models)
        second = self.run_fleet(models)
        assert first.ops == second.ops
        assert first.schedule_crc == second.schedule_crc

    def test_op_counts_invariant_across_shards(self, models):
        plain = self.run_fleet(models)
        sharded = self.run_fleet(models, shards=4)
        assert plain.ops == sharded.ops
        assert plain.schedule_crc == sharded.schedule_crc

    def test_clean_run_validates(self, models):
        report = self.run_fleet(models)
        assert validate(report) == []
        assert report.error_rate == 0.0
        assert report.problems == []

    def test_all_op_classes_sampled(self, models):
        report = self.run_fleet(models)
        for op in loadgen.OP_CLASSES:
            assert report.op_us[op]["count"] > 0, f"no {op} samples"

    def test_apply_latency_tagged_by_kind(self, models):
        report = self.run_fleet(models)
        # the figure mix always types and executes
        assert report.apply_us_by_kind.get("exec", {}).get("count")

    def test_budget_held_and_every_drop_hibernated(self, models):
        report = self.run_fleet(models)
        assert report.live_peak <= report.max_live
        # closed loop: every user attached exactly once, wakes extra
        assert report.ops["attach"] == 10
        assert report.ops["wake"] >= 1


class TestFaultStorm:
    def test_faulted_errors_are_accounted_separately(self):
        # uid 0 is in the storm; its model writes 4 records and the
        # schedule faults the 3rd input write, so the hit is certain
        lg = LoadGen(users=1, seed=3, workers=1, transport="pipe",
                     models=tiny_models(records=4), faults=True)
        report = lg.run()
        assert report.errors.get("faulted") == 1
        assert report.error_rate == 0.0  # staged faults are not failures
        assert not [p for p in report.problems if "lg.u0" in p]

    def test_unfaulted_users_ride_through_the_storm(self, models):
        lg = LoadGen(users=12, seed=3, workers=4, transport="pipe",
                     models=models, faults=True)
        report = lg.run()
        unexpected = {k: v for k, v in report.errors.items()
                      if k != "faulted" and v}
        assert unexpected == {}
        assert report.error_rate == 0.0


class TestSloGate:
    def test_slowed_apply_handler_breaches_the_budget(self, monkeypatch):
        # a regression stand-in: every input-record application stalls
        # past the 250ms apply budget — benchgate must turn red on the
        # default SLO table, no tightened test-only ceilings
        from repro.journal.recorder import apply_record as real_apply

        def slowed(help_app, record):
            time.sleep(0.3)
            return real_apply(help_app, record)

        monkeypatch.setattr("repro.serve.host.apply_record", slowed)
        lg = LoadGen(users=2, seed=5, workers=2, transport="pipe",
                     models=tiny_models(records=1))
        report = lg.run()
        problems = benchgate.audit_loadgen(
            report.to_dict(), min_users=2)
        assert any("SLO breach" in p and "apply" in p for p in problems), \
            problems

    def test_clean_run_passes_the_default_budgets(self, models):
        lg = LoadGen(users=8, seed=5, workers=4, transport="pipe",
                     models=models)
        report = lg.run()
        problems = benchgate.audit_loadgen(report.to_dict(), min_users=8)
        # shard floor intentionally unmet here (plain host) — the only
        # acceptable complaint; latency and error budgets must hold
        assert [p for p in problems if "shards" not in p] == []


class TestCli:
    def test_smoke_is_clean(self, capsys):
        assert loadgen.main(["--smoke", "--users", "8", "--pipe"]) == 0
        out = capsys.readouterr().out
        assert "smoke clean" in out
        assert "identical op-class counts" in out

    def test_single_run_reports_json(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = loadgen.main(["--users", "6", "--pipe", "--seed", "9",
                             "--report", str(path)])
        assert code == 0
        import json
        report = json.loads(path.read_text())
        assert report["users"] == 6
        assert set(report["op_us"]) == set(loadgen.OP_CLASSES)

    def test_bad_usage_exits_2(self, capsys):
        assert loadgen.main(["--bogus"]) == 2
        assert loadgen.main(["--users", "abc"]) == 2
        assert "usage" in capsys.readouterr().err


class TestChaos:
    def test_chaos_needs_replicated_shards(self):
        with pytest.raises(ValueError):
            LoadGen(users=4, chaos=1, transport="pipe")
        with pytest.raises(ValueError):
            LoadGen(users=4, shards=2, chaos=3, transport="pipe")

    def test_failover_soak_validates_clean(self, models):
        lg = LoadGen(users=12, shards=2, seed=7, workers=4,
                     transport="pipe", models=models, chaos=1)
        report = lg.run()
        assert validate(report) == [], validate(report)
        section = report.chaos
        assert section["kills"] == 1 == section["promotions"]
        assert section["acked_lost"] == 0
        assert section["unrecovered"] == 0
        assert section["severed"] == section["recovered"]
        ledger = section["ledger"]
        assert ledger["shipped_frames"] == (ledger["acked_frames"]
                                            + ledger["inflight"]
                                            + ledger["ship_errors"])
        assert ledger["promoted"] == (ledger["promoted_live"]
                                      + ledger["promoted_parked"])
        # the same section benchgate audits, with test-scale floors
        assert benchgate.audit_replica(section, min_shards=2,
                                       min_kills=1, min_users=12) == []

    def test_chaos_section_travels_in_the_report_dict(self, models):
        lg = LoadGen(users=6, shards=2, seed=11, workers=2,
                     transport="pipe", models=models, chaos=1)
        report = lg.run()
        data = report.to_dict()
        assert data["chaos"]["kills"] == 1
        assert "ledger" in data["chaos"]

    def test_plain_report_has_no_chaos_section(self, models):
        lg = LoadGen(users=2, seed=11, workers=2, transport="pipe",
                     models=models)
        assert "chaos" not in lg.run().to_dict()


class TestJsonCli:
    def test_json_flag_writes_the_artifact(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setattr(loadgen, "ARTIFACTS", tmp_path)
        code = loadgen.main(["--users", "6", "--pipe", "--seed", "9",
                             "--json", "--report",
                             str(tmp_path / "r.json")])
        assert code == 0
        import json
        data = json.loads((tmp_path / "report-run.json").read_text())
        assert data["users"] == 6
        assert set(data["op_us"]) == set(loadgen.OP_CLASSES)

    def test_smoke_json_writes_one_artifact_per_topology(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(loadgen, "ARTIFACTS", tmp_path)
        assert loadgen.main(["--smoke", "--users", "8", "--pipe",
                             "--json"]) == 0
        assert (tmp_path / "report-plain.json").exists()
        assert (tmp_path / "report-shards4.json").exists()

    def test_chaos_cli_validates_its_arguments(self, capsys):
        assert loadgen.main(["--users", "4", "--shards", "2",
                             "--chaos", "3", "--pipe"]) == 2
        assert "chaos" in capsys.readouterr().err
