"""Tests for the reconstructed help sources."""

import pytest

from repro.cbrowse import parse_program
from repro.fs import VFS, Namespace
from repro.tools.corpus import LANDMARKS, SRC_DIR, install_help_sources


@pytest.fixture(scope="module")
def ns():
    namespace = Namespace(VFS())
    install_help_sources(namespace)
    return namespace


def line_of(ns, name, line):
    return ns.read(f"{SRC_DIR}/{name}").splitlines()[line - 1]


class TestLandmarks:
    def test_all_landmarks_in_place(self, ns):
        expectations = {
            "n-declaration": "extern uchar *n;",
            "n-initialized": 'n = (uchar*)"a test string";',
            "n-cleared": "n = 0;",
            "n-read": "errs(n);",
            "strlen-call": "nn = strlen((char*)s);",
            "textinsert-call": "textinsert(1, errtext, s, 13, full);",
            "execute-call": "execute(t, p0, p1);",
        }
        for key, expected in expectations.items():
            file, line = LANDMARKS[key]
            assert expected in line_of(ns, file, line), key

    def test_files_written(self, ns):
        names = ns.listdir(SRC_DIR)
        for required in ("dat.h", "fns.h", "help.c", "exec.c", "errs.c",
                         "text.c", "ctrl.c", "file.c", "mkfile"):
            assert required in names

    def test_returns_landmarks(self):
        got = install_help_sources(Namespace(VFS()), "/tmp/src")
        assert got == LANDMARKS


class TestCorpusParses:
    def test_no_unresolved_identifiers(self, ns):
        paths = ns.glob(f"{SRC_DIR}/*.c")
        program = parse_program(ns, paths, base_dir=SRC_DIR)
        assert program.unresolved() == []

    def test_figure10_uses_exactly(self, ns):
        paths = ns.glob(f"{SRC_DIR}/*.c")
        program = parse_program(ns, paths, base_dir=SRC_DIR)
        locations = [u.location for u in program.uses_of("n", "exec.c", 252)]
        assert locations == ["./dat.h:136", "exec.c:213",
                             "exec.c:252", "help.c:35"]

    def test_local_n_in_findopen1_separate(self, ns):
        paths = ns.glob(f"{SRC_DIR}/*.c")
        program = parse_program(ns, paths, base_dir=SRC_DIR)
        local = [d for d in program.decls
                 if d.name == "n" and d.kind == "local"]
        # findopen1's n in exec.c and textinsert's nn is separate
        assert any(d.file == "exec.c" for d in local)

    def test_mkfile_parses(self, ns):
        from repro.mk import parse_mkfile
        mkfile = parse_mkfile(ns.read(f"{SRC_DIR}/mkfile"))
        assert mkfile.default_target() == "help"
