"""The servecheck CLI: figures replayed over the wire match goldens.

The full Figures 5-12 sweep over both transports is the CLI's job
(and CI's); these tests pin the machinery on a single figure so the
tier-1 suite stays fast while still proving the remote mount is
transparent end to end.
"""

import pytest

from repro.tools import servecheck


class TestCheckFigure:
    @pytest.mark.parametrize("transport", ["socket", "pipe"])
    def test_fig05_is_byte_identical_over_the_wire(self, transport):
        assert servecheck.check_figure(
            "fig05_headers", servecheck.fig05_headers, transport) == []

    def test_wireless_figure_skips_the_traffic_check(self):
        # fig08 never touches /mnt/help; uses_wire=False must exempt it
        assert servecheck.check_figure(
            "fig08_openline", servecheck.fig08_openline, "pipe",
            uses_wire=False) == []

    def test_missing_golden_is_reported(self):
        problems = servecheck.check_figure(
            "fig99_nonesuch", servecheck.fig05_headers, "pipe")
        assert problems == [f"fig99_nonesuch: no golden at "
                            f"{servecheck.GOLDENS / 'fig99_nonesuch.txt'}"]

    def test_divergence_points_at_the_first_bad_line(self):
        # replay fig06's scenario against fig05's golden: must differ
        problems = servecheck.check_figure(
            "fig05_headers", servecheck.fig06_messages, "pipe")
        assert len(problems) == 1
        assert "differs from golden" in problems[0]


class TestFigureTable:
    def test_covers_figures_5_through_12(self):
        names = [name for name, _, _ in servecheck.FIGURES]
        assert names == [
            "fig05_headers", "fig06_messages", "fig07_stack",
            "fig08_openline", "fig09_openline2", "fig10_uses",
            "fig11_culprit", "fig12_mk"]

    def test_builtin_open_figures_are_marked_wireless(self):
        wireless = {name for name, _, uses_wire in servecheck.FIGURES
                    if not uses_wire}
        assert wireless == {"fig08_openline", "fig09_openline2",
                            "fig11_culprit"}


class TestCli:
    def test_usage_error(self, capsys):
        assert servecheck.main(["--bogus"]) == 2
        assert "usage" in capsys.readouterr().err
