"""sessioncheck: the K-concurrent-sessions golden gate, as a test."""

from __future__ import annotations

from repro.tools import sessioncheck
from repro.tools.servecheck import FIGURES


def test_concurrent_sessions_match_goldens_over_pipes():
    """Two concurrent sessions, every figure, byte-identical, isolated."""
    assert sessioncheck.run(2, ["pipe"]) == []


def test_concurrent_sessions_match_goldens_across_shards():
    """The same gate with attaches hashed over a 2-shard router: the
    sharding must be invisible — screens, journals, ledgers identical."""
    assert sessioncheck.run(2, ["pipe"], shards=2) == []


def test_recorded_scripts_cover_every_figure():
    scripts = sessioncheck.record_figures()
    assert set(scripts) == {name for name, _, _ in FIGURES}
    for script in scripts.values():
        assert script["input"]  # every figure drives at least one record
        assert script["screen"]


def test_ledger_parse_drops_unstable_entries():
    text = ("fs.read 7\nwire.bytes.in 123\nmux.inflight 1\n"
            "session.input.applied 4\n")
    assert sessioncheck._ledger_of(text) == {"fs.read": 7,
                                             "session.input.applied": 4}


def test_main_usage_error(capsys):
    assert sessioncheck.main(["--bogus"]) == 2
    assert "usage:" in capsys.readouterr().err
