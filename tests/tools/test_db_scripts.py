"""Tests for the full set of /help/db scripts."""

import pytest

from repro import build_system
from repro.proc.crash import synthetic_crash


@pytest.fixture
def system():
    return build_system()


def point_at_pid(system, pid="176153"):
    h = system.help
    w = h.new_window("/tmp/report", f"process {pid} is broken\n")
    h.point_at(w, w.body.string().index(pid) + 1)
    return w


class TestDbScripts:
    def test_kstack(self, system):
        h = system.help
        point_at_pid(system)
        h.execute_text(h.window_by_name("/help/db/stf"), "kstack")
        w = h.window_by_name("176153")
        assert w is not None
        assert "kstack" in w.tag.string()
        assert "trap" in w.body.string()
        assert "/sys/src/9/mips/trap.c:112" in w.body.string()

    def test_nextkstack_no_others(self, system):
        h = system.help
        point_at_pid(system)
        h.execute_text(h.window_by_name("/help/db/stf"), "nextkstack")
        errors = h.window_by_name("Errors")
        assert "no more broken processes" in errors.body.string()

    def test_nextkstack_with_another_corpse(self, system):
        h = system.help
        other = synthetic_crash(system.procs, "other", depth=2)
        point_at_pid(system)
        h.execute_text(h.window_by_name("/help/db/stf"), "nextkstack")
        w = h.window_by_name(str(other.pid))
        assert w is not None
        # the synthetic crash has no kernel frames
        assert "no kernel stack" in w.body.string()

    def test_ps_window(self, system):
        h = system.help
        h.execute_text(h.window_by_name("/help/db/stf"), "ps")
        w = h.window_by_name("ps")
        assert "176153 Broken   help" in w.body.string()

    def test_broke_window(self, system):
        h = system.help
        system.procs.spawn("healthy")
        h.execute_text(h.window_by_name("/help/db/stf"), "broke")
        w = h.window_by_name("broke")
        body = w.body.string()
        assert "176153" in body
        assert "healthy" not in body

    def test_stack_on_healthy_process_reports(self, system):
        h = system.help
        healthy = system.procs.spawn("alive")
        w = h.new_window("/tmp/r", f"{healthy.pid}\n")
        h.point_at(w, 0)
        h.execute_text(h.window_by_name("/help/db/stf"), "stack")
        errors = h.window_by_name("Errors")
        assert "not broken" in errors.body.string()

    def test_stack_window_reusable_for_browsing(self, system):
        """The stack window's body text feeds Open directly."""
        h = system.help
        point_at_pid(system)
        h.execute_text(h.window_by_name("/help/db/stf"), "stack")
        stack_w = h.window_by_name("/usr/rob/src/help/")
        pos = stack_w.body.string().index("errs.c:34") + 1
        h.point_at(stack_w, pos)
        h.exec_builtin("Open", stack_w)
        errs_w = h.window_by_name("/usr/rob/src/help/errs.c")
        assert errs_w.body.line_of(errs_w.org) == 34
