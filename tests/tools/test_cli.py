"""Tests for the ``python -m repro`` interactive driver."""

import io

import repro.__main__ as cli


def run_cli(monkeypatch, capsys, commands, argv=()):
    monkeypatch.setattr("sys.stdin", io.StringIO(commands))
    status = cli.main(list(argv))
    out = capsys.readouterr()
    return status, out.out, out.err


class TestCli:
    def test_quit(self, monkeypatch, capsys):
        status, out, _ = run_cli(monkeypatch, capsys, "quit\n")
        assert status == 0
        assert "help booted" in out

    def test_windows_listing(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys, "windows\nquit\n")
        assert "help/Boot Exit" in out
        assert "/help/mail/stf" in out

    def test_render(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys, "render\nquit\n")
        assert "[help/Boot Exit" in out

    def test_open_with_line(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys,
                            "open /usr/rob/src/help/dat.h:136\nquit\n")
        assert "/usr/rob/src/help/dat.h" in out

    def test_exec_and_show(self, monkeypatch, capsys):
        script = ("open /usr/rob/lib/profile\n"
                  "select 6 0 4\n"
                  "exec 6 Snarf\n"
                  "show 6\n"
                  "quit\n")
        _, out, _ = run_cli(monkeypatch, capsys, script)
        assert "selected" in out
        assert "bind" in out

    def test_type_command(self, monkeypatch, capsys):
        script = ("open /usr/rob/lib/profile\n"
                  "select 6 0 0\n"
                  "type 6 hello\\nworld\n"
                  "show 6\n"
                  "quit\n")
        _, out, _ = run_cli(monkeypatch, capsys, script)
        assert "hello" in out

    def test_sh_command(self, monkeypatch, capsys):
        _, out, err = run_cli(monkeypatch, capsys,
                              "sh echo from the shell\nquit\n")
        assert "from the shell\n" in out

    def test_demo(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys, "demo\nquit\n")
        assert "176153 stack" in out
        assert "textinsert" in out

    def test_unknown_command(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys, "frob\nquit\n")
        assert "?unknown" in out

    def test_error_recovered(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys,
                            "exec 999 Open\nwindows\nquit\n")
        assert "error:" in out
        assert "help/Boot" in out  # the loop survived

    def test_custom_size(self, monkeypatch, capsys):
        _, out, _ = run_cli(monkeypatch, capsys, "quit\n",
                            argv=["150", "50"])
        assert "150x50" in out

    def test_exit_via_help(self, monkeypatch, capsys):
        script = "exec 1 Exit\nwindows\nquit\n"
        _, out, _ = run_cli(monkeypatch, capsys, script)
        # Exit stops the session; the loop ends before 'windows'
        assert "help/Boot Exit" not in out.split("ok")[-1]

    def test_blank_lines_ignored(self, monkeypatch, capsys):
        status, _, _ = run_cli(monkeypatch, capsys, "\n\nquit\n")
        assert status == 0

    def test_eof_terminates(self, monkeypatch, capsys):
        status, _, _ = run_cli(monkeypatch, capsys, "windows\n")
        assert status == 0
