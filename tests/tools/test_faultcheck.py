"""The faultcheck CLI: the figure session must survive injected faults.

Marked ``tier2_faults`` with the rest of the robustness suite; the
standard schedule is part of the repo's contract, so these tests pin
both its outcome (exit 0, every rule fires) and the CLI surface
(argument validation, diagnostics on stderr).
"""

import pytest

from repro.tools import faultcheck

pytestmark = pytest.mark.tier2_faults


class TestSchedule:
    def test_standard_schedule_targets_real_session_ops(self):
        plan = faultcheck.standard_schedule()
        ops = [fault.op for fault in plan.faults]
        assert sorted(ops) == ["close", "open", "read", "write"]
        assert all(fault.at > 0 for fault in plan.faults)


class TestRun:
    def test_clean_and_faulted_passes_hold(self):
        assert faultcheck.run() == []

    def test_replay_completes_without_faults(self):
        from repro.tools.install import build_system
        system = build_system(width=120, height=40)
        assert faultcheck.replay(system) == []
        assert system.help.window_by_name("/usr/rob/src/help/") is not None


class TestCli:
    def test_main_ok(self, capsys):
        assert faultcheck.main([]) == 0
        out = capsys.readouterr().out
        assert "survives" in out
        assert "fs.fault.injected=4" in out

    def test_main_usage_error(self, capsys):
        assert faultcheck.main(["--bogus"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_main_accepts_dimensions(self, capsys):
        assert faultcheck.main(["160", "60"]) == 0
