"""replicacheck: the real-SIGKILL failover golden gate, as a test."""

from __future__ import annotations

from repro.tools import replicacheck


def test_sigkilled_primary_promotes_to_goldens():
    """Two figures mid-stream, the primary process SIGKILLed, the
    promoted standby serves both screens byte-identical to the pinned
    goldens with zero acknowledged writes lost."""
    assert replicacheck.run_check(figures=2, seed=1) == 0


def test_split_points_leave_every_figure_mid_stream():
    names = list(replicacheck.FIGURE_NAMES)
    scripts = replicacheck._record_scripts(names)
    points = replicacheck._split_points(7, names, scripts)
    for name in names:
        total = len(scripts[name]["lines"])
        assert 1 <= points[name] <= total
        if total > 1:
            assert points[name] < total  # something left to resume

    # seeded: the same seed picks the same kill points
    assert points == replicacheck._split_points(7, names, scripts)


def test_main_usage_errors(capsys):
    assert replicacheck.main(["--bogus"]) == 2
    assert replicacheck.main(["--figures", "99"]) == 2
    assert replicacheck.main(["--primary"]) == 2
    err = capsys.readouterr().err
    assert "usage" in err and "--standby" in err
