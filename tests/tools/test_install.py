"""Tests for the assembled system and the glue utilities."""

import pytest

from repro import build_system


@pytest.fixture
def system():
    return build_system()


class TestBuildSystem:
    def test_boots_tools(self, system):
        names = {w.name() for w in system.help.windows.values()}
        assert "/help/edit/stf" in names
        assert "/help/mail/stf" in names
        assert "help/Boot" in names

    def test_mnt_help_mounted(self, system):
        assert system.ns.exists("/mnt/help/index")

    def test_paper_pid_broken(self, system):
        assert system.procs.get(176153) is not None

    def test_mailbox_installed(self, system):
        assert len(system.mailbox.messages()) == 7

    def test_corpus_installed(self, system):
        assert system.ns.exists("/usr/rob/src/help/exec.c")

    def test_unbooted_system(self):
        system = build_system(boot=False)
        assert system.help.windows == {}

    def test_shell_factory(self, system):
        sh = system.shell("/usr/rob")
        assert sh.run("pwd").stdout == "/usr/rob\n"
        assert sh.get("home") == ["/usr/rob"]

    def test_profile_runs_in_shell(self, system):
        sh = system.shell("/usr/rob")
        result = sh.run(". /usr/rob/lib/profile")
        assert result.status == 0
        assert sh.get("site") == ["plan9"]


class TestExternalCommandPath:
    def test_command_output_goes_to_errors(self, system):
        h = system.help
        w = h.new_window("/usr/rob/src/help/help.c",
                         system.ns.read("/usr/rob/src/help/help.c"))
        h.execute_text(w, "echo hello from rc")
        errors = h.window_by_name("Errors")
        assert "hello from rc" in errors.body.string()

    def test_grep_paper_example(self, system):
        """grep 'main' over the help sources, as in the paper."""
        h = system.help
        w = h.open_path("/usr/rob/src/help/help.c")
        h.execute_text(w, "grep -n main /usr/rob/src/help/*.c")
        errors = h.window_by_name("Errors")
        assert "help.c" in errors.body.string()

    def test_command_not_found(self, system):
        h = system.help
        w = h.new_window("")
        h.execute_text(w, "frobnicate")
        assert "not found" in h.window_by_name("Errors").body.string()

    def test_tool_resolved_through_tag_directory(self, system):
        """Executing a word in a tool window runs /help/<tool>/<word>."""
        h = system.help
        stf = h.window_by_name("/help/db/stf")
        h.execute_text(stf, "ps")
        ps_w = h.window_by_name("ps")
        assert ps_w is not None
        assert "176153" in ps_w.body.string()

    def test_helpsel_passed(self, system):
        h = system.help
        w = h.new_window("/tmp/x", "some words")
        h.select(w, 5, 10)
        h.execute_text(w, "echo $helpsel")
        errors = h.window_by_name("Errors")
        assert f"{w.id}:body:5:10" in errors.body.string()


class TestHelpParse:
    def run_parse(self, system, args=""):
        h = system.help
        sh = system.shell()
        sel = h.current
        window, sub = sel
        mark = window.selection(sub)
        sh.set("helpsel", [f"{window.id}:{sub.value}:{mark.q0}:{mark.q1}"])
        return sh.run(f"help/parse {args}")

    def test_word_expansion(self, system):
        h = system.help
        w = h.new_window("/usr/rob/src/help/exec.c", "errs(n);\n")
        h.point_at(w, 6)
        result = self.run_parse(system)
        assert "word='n'" in result.stdout
        assert "dir='/usr/rob/src/help'" in result.stdout
        assert "file='/usr/rob/src/help/exec.c'" in result.stdout
        assert "line='1'" in result.stdout

    def test_first_word_of_line(self, system):
        h = system.help
        w = h.new_window("/tmp/x", "2 sean Tue Apr 16\n")
        h.point_at(w, 8)  # pointing at 'Tue'
        result = self.run_parse(system)
        assert "first='2'" in result.stdout

    def test_explicit_selection_literal(self, system):
        h = system.help
        w = h.new_window("/tmp/x", "alpha beta")
        h.select(w, 0, 5)
        result = self.run_parse(system)
        assert "word='alpha'" in result.stdout

    def test_no_helpsel_fails(self, system):
        result = system.shell().run("help/parse")
        assert result.status == 1
        assert "helpsel" in result.stderr

    def test_gone_window_fails(self, system):
        sh = system.shell()
        sh.set("helpsel", ["999:body:0:0"])
        assert sh.run("help-parse").status == 1

    def test_dash_c_requires_file(self, system):
        h = system.help
        w = h.new_window("", "text")
        h.point_at(w, 0)
        result = self.run_parse(system, "-c")
        assert result.status == 1


class TestHelpGotoWindow:
    def test_goto_opens_at_line(self, system):
        sh = system.shell("/usr/rob/src/help")
        result = sh.run("help/goto dat.h:136")
        assert result.status == 0
        w = system.help.window_by_name("/usr/rob/src/help/dat.h")
        assert w is not None
        assert w.body.line_of(w.org) == 136

    def test_goto_missing(self, system):
        result = system.shell().run("help-goto /no/file")
        assert result.status == 1

    def test_window_lookup(self, system):
        w = system.help.new_window("/tmp/findme", "x")
        result = system.shell().run("help/window /tmp/findme")
        assert result.stdout.strip() == str(w.id)

    def test_window_lookup_missing(self, system):
        assert system.shell().run("help-window /tmp/ghost").status == 1

    def test_buf_passes_through(self, system):
        result = system.shell().run("echo data | help/buf")
        assert result.stdout == "data\n"
