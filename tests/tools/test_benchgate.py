"""The benchgate CLI: the benchmark counter ledger must balance."""

import json

from repro.tools import benchgate


def clean_report() -> dict:
    return {
        "mode": "counters-only",
        "ops": {"test_perf_wire_concurrent_sessions": {
            "extra_info": {"sessions": 6}}},
        "counters": {
            "fs.open": 100, "fs.close": 100,
            "wire.rpc.attach": 8, "wire.rpc.read": 40,
        },
        "wire": {
            "server_rpc_us": {"wire.rpc.read": {"count": 40, "p50": 10.0}},
            "client_rpc_us": {"mux.rpc.read": {"count": 40, "p50": 12.0}},
        },
    }


class TestAudit:
    def test_clean_ledger_passes(self):
        assert benchgate.audit(clean_report()) == []

    def test_session_leak_is_flagged(self):
        report = clean_report()
        report["counters"]["fs.close"] = 97
        problems = benchgate.audit(report)
        assert any("session leak" in p and "+3" in p for p in problems)

    def test_any_error_counter_is_flagged(self):
        report = clean_report()
        report["counters"]["fs.error.notfound"] = 2
        assert any("fs.error.notfound=2" in p
                   for p in benchgate.audit(report))

    def test_fault_injection_is_flagged(self):
        report = clean_report()
        report["counters"]["fs.fault.injected"] = 1
        assert any("fault injection" in p for p in benchgate.audit(report))

    def test_too_few_wire_sessions_is_flagged(self):
        report = clean_report()
        report["counters"]["wire.rpc.attach"] = 2
        report["ops"] = {}
        assert any("underpowered" in p for p in benchgate.audit(report))

    def test_sessions_satisfied_by_extra_info_alone(self):
        report = clean_report()
        report["counters"]["wire.rpc.attach"] = 0
        assert benchgate.audit(report) == []

    def test_missing_wire_histograms_is_flagged(self):
        report = clean_report()
        report["wire"]["client_rpc_us"] = {}
        assert any("client_rpc_us" in p for p in benchgate.audit(report))

    def test_counterless_report_is_rejected(self):
        assert benchgate.audit({}) == [
            "report has no counters section — not a benchmark run?"]


class TestJournalLedger:
    def with_journal(self, appended=100, replayed=90, dropped=10,
                     failed=0, applied=12):
        report = clean_report()
        report["counters"].update({
            "journal.append.records": appended,
            "journal.replay.records": replayed,
            "journal.compact.dropped": dropped,
            "journal.checksum.failed": failed,
            "journal.replay.applied": applied,
        })
        return report

    def test_balanced_ledger_passes(self):
        assert benchgate.audit(self.with_journal()) == []

    def test_no_journal_counters_is_not_audited(self):
        assert benchgate.audit(clean_report()) == []

    def test_imbalance_is_flagged(self):
        problems = benchgate.audit(self.with_journal(replayed=89))
        assert any("journal ledger imbalance" in p for p in problems)

    def test_compaction_drops_are_part_of_the_balance(self):
        assert benchgate.audit(self.with_journal(
            appended=100, replayed=100, dropped=0)) == []
        problems = benchgate.audit(self.with_journal(
            appended=100, replayed=100, dropped=10))
        assert any("imbalance" in p for p in problems)

    def test_checksum_failures_are_flagged(self):
        problems = benchgate.audit(self.with_journal(failed=2))
        assert any("journal.checksum.failed=2" in p for p in problems)

    def test_replay_that_never_applied_is_flagged(self):
        problems = benchgate.audit(self.with_journal(applied=0))
        assert any("never applied" in p for p in problems)


class TestHostLedger:
    def with_host(self, opened=12, closed=12, bleed=0, samples=72,
                  audited=True):
        report = clean_report()
        report["counters"].update({
            "host.sessions.opened": opened,
            "host.sessions.closed": closed,
        })
        if audited:
            report["counters"]["host.sessions.bleed"] = bleed
        report["sessions"] = {
            "session_us": {"session.apply_us": {"count": samples,
                                                "p50": 120.0}},
            "ledger": {k: v for k, v in report["counters"].items()
                       if k.startswith("host.")},
        }
        return report

    def test_balanced_host_ledger_passes(self):
        assert benchgate.audit(self.with_host()) == []

    def test_no_host_counters_is_not_audited(self):
        assert benchgate.audit(clean_report()) == []

    def test_hosted_session_leak_is_flagged(self):
        problems = benchgate.audit(self.with_host(closed=11))
        assert any("hosted-session leak" in p for p in problems)

    def test_bleed_is_flagged(self):
        problems = benchgate.audit(self.with_host(bleed=3))
        assert any("host.sessions.bleed=3" in p for p in problems)

    def test_missing_audit_verdict_is_flagged(self):
        problems = benchgate.audit(self.with_host(audited=False))
        assert any("never audited" in p for p in problems)

    def test_empty_sessions_section_is_flagged(self):
        problems = benchgate.audit(self.with_host(samples=0))
        assert any("apply-latency" in p for p in problems)


class TestShardLedger:
    def with_shards(self, shards=4, leak_on=None, dup=0, rejected=0,
                    audited=True):
        report = clean_report()
        report["counters"].update({
            "router.attach.routed": shards,
            "router.attach.rejected": rejected,
        })
        if audited:
            report["counters"]["router.sessions.dup"] = dup
        per_shard = []
        for i in range(shards):
            attached = 1
            clunked = 0 if i == leak_on else 1
            per_shard.append({"shard": i, "attached": attached,
                              "clunked": clunked})
        report["shards"] = {
            "shard_count": shards,
            "per_shard": per_shard,
            "aggregate_rpcs_per_sec": 75_000.0,
            "meets_100k_floor": False,
            "ledger": {k: v for k, v in report["counters"].items()
                       if k.startswith("router.")},
        }
        return report

    def test_balanced_shard_ledger_passes(self):
        assert benchgate.audit(self.with_shards()) == []

    def test_no_router_counters_is_not_audited(self):
        assert benchgate.audit(clean_report()) == []

    def test_too_few_shards_is_flagged(self):
        problems = benchgate.audit(self.with_shards(shards=2))
        assert any("shard bench underpowered" in p for p in problems)

    def test_per_shard_leak_is_flagged(self):
        problems = benchgate.audit(self.with_shards(leak_on=1))
        assert any("shard 1 leaked sessions" in p for p in problems)

    def test_cross_shard_dup_is_flagged(self):
        problems = benchgate.audit(self.with_shards(dup=1))
        assert any("cross-shard bleed" in p for p in problems)

    def test_missing_router_audit_verdict_is_flagged(self):
        problems = benchgate.audit(self.with_shards(audited=False))
        assert any("never audited" in p for p in problems)

    def test_rejected_attaches_are_flagged(self):
        problems = benchgate.audit(self.with_shards(rejected=2))
        assert any("router.attach.rejected=2" in p for p in problems)

    def test_missing_the_100k_floor_is_advisory_only(self):
        # single-core runners record the floor honestly without failing
        report = self.with_shards()
        assert report["shards"]["meets_100k_floor"] is False
        assert benchgate.audit(report) == []


class TestLoadgenSlo:
    def with_loadgen(self, users=1200, shards=4, p99=None, rate=0.0,
                     drop_op=None, problems=(), section=True):
        report = clean_report()
        report["counters"]["loadgen.ops.total"] = 5000
        if not section:
            return report
        ceilings = dict(benchgate.SLO_P99_US)
        op_us = {op: {"count": 100, "p50": 100.0, "p95": 500.0,
                      "p99": (p99 or {}).get(op, ceilings[op] / 2)}
                 for op in ceilings}
        if drop_op:
            op_us[drop_op] = {}
        report["loadgen"] = {
            "users": users, "shards": shards, "op_us": op_us,
            "error_rate": rate, "errors": {},
            "backpressure": {"busy": 0, "paused": 0, "resumed": 0},
            "problems": list(problems),
        }
        return report

    def test_within_budget_passes(self):
        assert benchgate.audit(self.with_loadgen()) == []

    def test_no_loadgen_counters_is_not_audited(self):
        assert benchgate.audit(clean_report()) == []

    def test_counters_without_section_is_flagged(self):
        problems = benchgate.audit(self.with_loadgen(section=False))
        assert any("section is missing" in p for p in problems)

    def test_p99_breach_is_flagged_per_op_class(self):
        over = benchgate.SLO_P99_US["apply"] + 1
        problems = benchgate.audit(self.with_loadgen(p99={"apply": over}))
        assert any("SLO breach" in p and "apply" in p for p in problems)
        # only the breaching class is named, not its neighbours
        assert not any("attach" in p for p in problems)

    def test_every_op_class_has_a_ceiling(self):
        assert set(benchgate.SLO_P99_US) == {
            "attach", "read", "write", "apply", "wake"}

    def test_unsampled_op_class_is_flagged(self):
        problems = benchgate.audit(self.with_loadgen(drop_op="wake"))
        assert any("'wake' never sampled" in p for p in problems)

    def test_error_rate_breach_is_flagged(self):
        problems = benchgate.audit(self.with_loadgen(rate=0.01))
        assert any("error_rate" in p for p in problems)

    def test_underpowered_soak_is_flagged(self):
        problems = benchgate.audit(self.with_loadgen(users=200))
        assert any("loadgen soak underpowered" in p for p in problems)
        problems = benchgate.audit(self.with_loadgen(shards=1))
        assert any("shards" in p for p in problems)

    def test_run_problems_propagate(self):
        problems = benchgate.audit(self.with_loadgen(
            problems=["quiesce timeout: 3 of 9 drops hibernated"]))
        assert any("quiesce timeout" in p for p in problems)


class TestCli:
    def test_main_ok(self, tmp_path, capsys):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(clean_report()))
        assert benchgate.main([str(path)]) == 0
        assert "ledger balances" in capsys.readouterr().out

    def test_main_flags_violations(self, tmp_path, capsys):
        report = clean_report()
        report["counters"]["fs.open"] = 101
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(report))
        assert benchgate.main([str(path)]) == 1
        assert "session leak" in capsys.readouterr().err

    def test_main_missing_file(self, tmp_path, capsys):
        assert benchgate.main([str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_main_usage_error(self, capsys):
        assert benchgate.main(["a", "b"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_default_path_points_at_bench_artifacts(self):
        assert benchgate.DEFAULT_REPORT.parts[-2:] == (
            "bench_artifacts", "BENCH_perf.json")


class TestGuardedChecks:
    """One run reports every broken budget — nothing hides anything."""

    def test_all_violations_reported_in_one_run(self):
        report = clean_report()
        report["counters"]["fs.close"] = 97            # session leak
        report["counters"]["fs.fault.injected"] = 1    # fault traffic
        report["counters"]["wire.rpc.attach"] = 2      # underpowered
        report["ops"] = {}
        report["wire"]["client_rpc_us"] = {}           # no samples
        report["counters"]["journal.append.records"] = 10  # imbalance
        problems = benchgate.audit(report)
        assert any("session leak" in p for p in problems)
        assert any("fault injection" in p for p in problems)
        assert any("underpowered" in p for p in problems)
        assert any("client_rpc_us" in p for p in problems)
        assert any("journal ledger imbalance" in p for p in problems)
        assert len(problems) >= 5

    def test_crashed_check_cannot_hide_later_violations(self):
        report = clean_report()
        # a malformed shards section makes that check crash...
        report["counters"]["router.attach.routed"] = 5
        report["shards"] = {"per_shard": [42]}  # not a ledger entry
        # ...while a later section still carries a real violation
        report["counters"]["loadgen.ops.total"] = 100
        problems = benchgate.audit(report)
        assert any("crashed" in p and "shards" in p for p in problems)
        assert any("loadgen" in p and "section is missing" in p
                   for p in problems)


class TestReplicaSlo:
    def with_replica(self, **overrides) -> dict:
        ceilings = benchgate.SLO_REPLICA_P99_US
        section = {
            "users": 1200, "shards": 4, "mode": "sync",
            "kills": 3, "promotions": 3,
            "severed": 12, "recovered": 12, "unrecovered": 0,
            "acked_lost": 0,
            "promote_us": {"count": 3, "p99": ceilings["promote"] / 2},
            "failover_us": {"count": 3, "p99": ceilings["failover"] / 2},
            "lag_us": {"count": 500, "p99": ceilings["lag"] / 2},
            "ledger": {
                "shipped_frames": 100, "acked_frames": 98,
                "ship_errors": 2, "inflight": 0,
                "promoted": 40, "promoted_live": 10,
                "promoted_parked": 30,
            },
            "problems": [],
        }
        section.update(overrides)
        return section

    def test_clean_section_passes(self):
        assert benchgate.audit_replica(self.with_replica()) == []

    def test_report_without_section_is_not_audited(self):
        assert benchgate.audit(clean_report()) == []

    def test_section_triggers_the_audit_via_report(self):
        report = clean_report()
        report["replica"] = self.with_replica(acked_lost=2)
        assert any("acknowledged writes lost" in p
                   for p in benchgate.audit(report))

    def test_acked_loss_is_zero_tolerance(self):
        problems = benchgate.audit_replica(self.with_replica(acked_lost=1))
        assert any("acknowledged writes lost" in p for p in problems)

    def test_unrecovered_users_are_flagged(self):
        problems = benchgate.audit_replica(self.with_replica(unrecovered=2))
        assert any("never recovered" in p for p in problems)

    def test_kill_promotion_mismatch_is_flagged(self):
        problems = benchgate.audit_replica(self.with_replica(promotions=2))
        assert any("failover incomplete" in p for p in problems)

    def test_underpowered_soak_is_flagged(self):
        assert any("users" in p for p in benchgate.audit_replica(
            self.with_replica(users=10)))
        assert any("shards" in p for p in benchgate.audit_replica(
            self.with_replica(shards=1)))
        assert any("killed" in p for p in benchgate.audit_replica(
            self.with_replica(kills=1, promotions=1)))

    def test_p99_breach_is_flagged_per_budget(self):
        over = benchgate.SLO_REPLICA_P99_US["promote"] + 1
        problems = benchgate.audit_replica(self.with_replica(
            promote_us={"count": 3, "p99": over}))
        assert any("SLO breach" in p and "promote" in p for p in problems)
        assert not any("failover" in p for p in problems)

    def test_injected_budgets_override_defaults(self):
        problems = benchgate.audit_replica(
            self.with_replica(), budgets={"promote": 1})
        assert any("promote" in p and "1us budget" in p for p in problems)

    def test_unsampled_histogram_is_flagged(self):
        problems = benchgate.audit_replica(self.with_replica(lag_us={}))
        assert any("lag_us never sampled" in p for p in problems)

    def test_ship_ledger_imbalance_is_flagged(self):
        ledger = self.with_replica()["ledger"]
        ledger["acked_frames"] = 90
        problems = benchgate.audit_replica(self.with_replica(ledger=ledger))
        assert any("ship ledger imbalance" in p for p in problems)

    def test_promotion_ledger_imbalance_is_flagged(self):
        ledger = self.with_replica()["ledger"]
        ledger["promoted_parked"] = 7
        problems = benchgate.audit_replica(self.with_replica(ledger=ledger))
        assert any("promotion ledger imbalance" in p for p in problems)

    def test_missing_ledger_is_flagged(self):
        section = self.with_replica()
        del section["ledger"]
        problems = benchgate.audit_replica(section)
        assert any("no replica ledger" in p for p in problems)

    def test_run_problems_propagate(self):
        problems = benchgate.audit_replica(self.with_replica(
            problems=["audit: standby1: books off by one"]))
        assert any("books off by one" in p for p in problems)
