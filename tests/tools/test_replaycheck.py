"""The replaycheck CLI: figures replay byte-identical, crashes recover."""

import pytest

from repro.core.render import render_screen
from repro.journal.recorder import divergence
from repro.tools import replaycheck, servecheck


class TestRecordReplay:
    def test_fig05_round_trips(self):
        recorded, text = replaycheck.record_figure(servecheck.fig05_headers)
        replayed, shadow, scan = replaycheck.replay_journal(text)
        assert render_screen(replayed.help) == render_screen(recorded.help)
        assert divergence(scan.records, shadow.records) is None

    def test_intermediate_screens_traced_on_request(self):
        _, text = replaycheck.record_figure(servecheck.fig05_headers,
                                            trace_screens=True)
        assert "+screen" in text

    def test_torn_journal_is_refused(self):
        _, text = replaycheck.record_figure(servecheck.fig05_headers)
        with pytest.raises(ValueError, match="torn"):
            replaycheck.replay_journal(text[:-4])


class TestCheckFigure:
    def test_clean_figure_reports_nothing(self):
        assert replaycheck.check_figure("fig05_headers",
                                        servecheck.fig05_headers) == []

    def test_missing_golden_reported(self):
        problems = replaycheck.check_figure("fig99_nope",
                                            servecheck.fig05_headers)
        assert problems and "no golden" in problems[0]

    def test_divergence_saves_the_journal(self, tmp_path, monkeypatch):
        monkeypatch.setattr(replaycheck, "ARTIFACTS", tmp_path)

        def wanders(system):
            servecheck.fig05_headers(system)
            system.help.open_path("/usr/rob/lib/profile")  # not in golden

        problems = replaycheck.check_figure("fig05_headers", wanders)
        assert any("differs from golden" in p for p in problems)
        assert (tmp_path / "fig05_headers.journal").exists()


class TestCheckRecovery:
    def test_crash_recovery_round_trips(self):
        assert replaycheck.check_recovery() == []


class TestCli:
    def test_usage_error(self, capsys):
        assert replaycheck.main(["--bogus"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_figure_list_matches_servecheck(self):
        names = [name for name, _, _ in servecheck.FIGURES]
        assert names[0].startswith("fig05")
        assert len(names) == 8
