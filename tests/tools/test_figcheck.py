"""Figure artifacts must never drift from their pinned goldens.

The paper's twelve figures are the repo's ground truth for what the
screen looks like; the incremental display pipeline is only allowed to
make rendering *faster*, never different.  ``tests/goldens/`` pins the
byte-exact artifacts, and this test fails the tier-1 suite the moment
a regenerated ``bench_artifacts/fig*.txt`` disagrees.
"""

import pathlib
import subprocess
import sys

from repro.tools import figcheck

REPO = pathlib.Path(__file__).resolve().parents[2]
GOLDENS = REPO / "tests" / "goldens"
ARTIFACTS = REPO / "bench_artifacts"


class TestRepoArtifacts:
    def test_no_fig_artifact_drifts_from_golden(self):
        assert sorted(GOLDENS.glob("fig*.txt")), "goldens missing"
        problems = figcheck.compare(GOLDENS, ARTIFACTS)
        assert problems == []

    def test_cli_passes_on_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.figcheck",
             str(GOLDENS), str(ARTIFACTS)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr


class TestCompare:
    def test_detects_content_drift(self, tmp_path):
        baseline = tmp_path / "baseline"
        artifact = tmp_path / "artifact"
        baseline.mkdir()
        artifact.mkdir()
        (baseline / "fig01.txt").write_text("row one\nrow two\n")
        (artifact / "fig01.txt").write_text("row one\nrow 2\n")
        problems = figcheck.compare(baseline, artifact)
        assert len(problems) == 1
        assert "fig01.txt" in problems[0]
        assert "line 2" in problems[0]

    def test_detects_missing_baseline(self, tmp_path):
        baseline = tmp_path / "baseline"
        artifact = tmp_path / "artifact"
        baseline.mkdir()
        artifact.mkdir()
        (artifact / "fig09.txt").write_text("new figure\n")
        problems = figcheck.compare(baseline, artifact)
        assert len(problems) == 1
        assert "no baseline" in problems[0]

    def test_unregenerated_artifact_is_not_drift(self, tmp_path):
        baseline = tmp_path / "baseline"
        artifact = tmp_path / "artifact"
        baseline.mkdir()
        artifact.mkdir()
        (baseline / "fig05.txt").write_text("pinned\n")
        assert figcheck.compare(baseline, artifact) == []

    def test_identical_artifacts_pass(self, tmp_path):
        baseline = tmp_path / "baseline"
        artifact = tmp_path / "artifact"
        baseline.mkdir()
        artifact.mkdir()
        for name in ("fig01.txt", "fig02.txt"):
            (baseline / name).write_text("same bytes\n")
            (artifact / name).write_text("same bytes\n")
        assert figcheck.compare(baseline, artifact) == []
