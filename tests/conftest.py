"""Test isolation for the metrics substrate.

Counters and histograms in :mod:`repro.metrics` are process-global by
design — the production code shouldn't thread a registry through every
layer just so tests can observe it.  The cost is cross-test bleed:
a test asserting ``fs.open == fs.close`` would otherwise inherit every
earlier test's traffic, and its own leaks would poison later tests.

This fixture gives each test a zeroed metrics world.  Tests that want
to assert on totals can do so with absolute values; the previous
state is snapshotted and restored afterwards so a bare ``pytest
tests/x.py::one_test`` observes the same counters as a full run.
"""

import importlib

import pytest

from repro.metrics.counter import reset_counters, reset_histograms

# ``repro.metrics`` re-exports the counter() *function* under the same
# name as the submodule, so attribute-style imports resolve to it;
# go through sys.modules for the module itself.
_counter_mod = importlib.import_module("repro.metrics.counter")


@pytest.fixture(autouse=True)
def _fresh_metrics():
    saved_counters = dict(_counter_mod._perf_counters)
    saved_histograms = {k: list(v)
                        for k, v in _counter_mod._histograms.items()}
    reset_counters()
    reset_histograms()
    yield
    reset_counters()
    reset_histograms()
    _counter_mod._perf_counters.update(saved_counters)
    _counter_mod._histograms.update(saved_histograms)
