"""Test isolation for the metrics substrate.

Counters and histograms in :mod:`repro.metrics` live in a
:class:`~repro.metrics.MetricsRegistry`; code that doesn't carry an
explicit registry handle routes through the process-wide default.
Without isolation that default would bleed across tests: a test
asserting ``fs.open == fs.close`` would inherit every earlier test's
traffic, and its own leaks would poison later tests.

This fixture gives each test its own fresh registry as the default —
no module globals are touched, and the previous registry (with
whatever it accumulated) is restored afterwards, so a bare ``pytest
tests/x.py::one_test`` observes the same counters as a full run.
"""

import pytest

from repro.metrics.counter import MetricsRegistry, set_default_registry


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_default_registry(MetricsRegistry("test"))
    yield
    set_default_registry(previous)
