"""The write-ahead log: durability, flush points, compaction ledger."""

from repro.fs import VFS, Namespace
from repro.journal import FORMAT, Journal, scan_text
from repro.metrics.counter import counter

PATH = "/tmp/test.journal"


def fresh_ns():
    ns = Namespace(VFS())
    ns.mkdir("/tmp", parents=True)
    return ns


class TestDurableJournal:
    def test_create_writes_header_only(self):
        ns = fresh_ns()
        Journal.create(ns, PATH)
        assert ns.read(PATH) == FORMAT + "\n"

    def test_append_is_buffered_until_flush(self):
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        journal.append("type", ("hello",))
        assert ns.read(PATH) == FORMAT + "\n"  # not yet durable
        assert journal.flush() == 1
        assert len(scan_text(ns.read(PATH)).records) == 1

    def test_flush_batches_pending_in_one_append(self):
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        for i in range(5):
            journal.append("type", (f"t{i}",))
        assert journal.flush() == 5
        assert counter("journal.fsync.count") == 1
        assert counter("journal.fsync.records") == 5
        assert journal.flush() == 0  # nothing pending: no second fsync
        assert counter("journal.fsync.count") == 1

    def test_sequence_is_monotonic(self):
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        seqs = [journal.append("type", (str(i),)).seq for i in range(4)]
        assert seqs == [1, 2, 3, 4]

    def test_append_counters_by_class(self):
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        journal.append("type", ("x",))
        journal.append("+cmd", ("/tmp", "ls"))
        journal.append("genesis", ())
        # append bookkeeping is buffered with the records and lands at
        # the flush point, one counter update per class
        assert counter("journal.append.records") == 0
        journal.flush()
        assert counter("journal.append.records") == 3
        assert counter("journal.append.input") == 1
        assert counter("journal.append.trace") == 1
        assert counter("journal.append.mark") == 1


class TestShadowJournal:
    def test_no_sink_no_durable_ledger(self):
        journal = Journal()
        journal.append("type", ("x",))
        assert counter("journal.shadow.records") == 1
        assert counter("journal.append.records") == 0
        assert journal.flush() == 0
        assert counter("journal.fsync.count") == 0

    def test_records_still_accumulate(self):
        journal = Journal()
        for i in range(3):
            journal.append("type", (str(i),))
        assert [r.seq for r in journal.records] == [1, 2, 3]


class TestCompaction:
    def compacted(self, before=4, keep_kind="snapshot"):
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        for i in range(before):
            journal.append("type", (f"t{i}",))
        journal.flush()
        keep = [journal.append(keep_kind, ("dump",))]
        journal.compact(keep)
        return ns, journal

    def test_sink_truncated_to_header_plus_keep(self):
        ns, journal = self.compacted()
        scan = scan_text(ns.read(PATH))
        assert [r.kind for r in scan.records] == ["snapshot"]
        assert not scan.torn

    def test_sequence_continues_across_compaction(self):
        ns, journal = self.compacted(before=4)
        record = journal.append("type", ("after",))
        assert record.seq == 6  # 4 inputs + snapshot + this one
        journal.flush()
        assert [r.seq for r in scan_text(ns.read(PATH)).records] == [5, 6]

    def test_dropped_records_are_accounted(self):
        self.compacted(before=4)
        # 4 flushed records vanished; the keep group was never durable
        # before the compact, so it is not part of the drop
        assert counter("journal.compact.dropped") == 4
        assert counter("journal.compact.count") == 1

    def test_ledger_balances_after_compaction(self):
        ns, journal = self.compacted(before=4)
        journal.append("type", ("suffix",))
        journal.flush()
        scan_text(ns.read(PATH))
        appended = counter("journal.append.records")
        assert appended == (counter("journal.replay.records")
                            + counter("journal.compact.dropped"))

    def test_unflushed_pre_snapshot_records_are_subsumed(self):
        # a record still pending when the snapshot lands is older than
        # the snapshot: flushing it afterwards would write a sequence
        # regression, so compact discards it (and accounts for it)
        ns = fresh_ns()
        journal = Journal.create(ns, PATH)
        journal.append("type", ("flushed",))
        journal.flush()
        journal.append("type", ("pending",))
        keep = [journal.append("snapshot", ("dump",))]
        journal.compact(keep)
        journal.flush()
        scan = scan_text(ns.read(PATH))
        assert [(r.kind, r.fields()) for r in scan.records] == \
            [("snapshot", ["dump"])]
        assert not scan.torn
        assert counter("journal.compact.dropped") == 2
