"""The session recorder: write-ahead tee, nesting, replay, divergence."""

import pytest

from repro import build_system, render_screen
from repro.journal import Journal, attach, scan_text
from repro.journal.recorder import ReplayError, divergence, replay
from repro.journal.record import make_record
from repro.metrics.counter import counter, histograms

PATH = "/usr/rob/help.journal"


def recorded_system(**kwargs):
    system = build_system(width=120, height=40)
    journal = Journal.create(system.ns, PATH)
    recorder = attach(system.help, journal, ns=system.ns, **kwargs)
    return system, journal, recorder


def kinds(journal):
    return [r.kind for r in journal.records]


class TestAttach:
    def test_genesis_is_durable_immediately(self):
        system, journal, _ = recorded_system()
        scan = scan_text(system.ns.read(PATH))
        assert [r.kind for r in scan.records] == ["genesis"]
        width, height, ncols, next_id = scan.records[0].fields()
        assert (width, height) == ("120", "40")
        assert int(next_id) == system.help._next_id

    def test_recorder_installed_on_help(self):
        system, _, recorder = recorded_system()
        assert system.help.journal is recorder


class TestWriteAhead:
    def test_input_is_durable_before_application(self):
        system, journal, recorder = recorded_system()
        with pytest.raises(RuntimeError, match="mid-application crash"):
            with recorder.recording("type", ("doomed",)):
                # the write-ahead guarantee: the record is already in
                # the file while the event is still being applied
                assert "doomed" in system.ns.read(PATH)
                raise RuntimeError("mid-application crash")

    def test_nested_entry_points_become_traces(self):
        _, journal, recorder = recorded_system()
        with recorder.recording("exec", ("1", "body", "headers")):
            with recorder.recording("newwin", ("-", "-", "-", "/x", "")):
                pass
        assert kinds(journal) == ["genesis", "exec", "+newwin"]

    def test_real_session_records_inputs_and_traces(self):
        system, journal, _ = recorded_system()
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert "exec" in kinds(journal)
        assert any(k.startswith("+") for k in kinds(journal))
        # everything flushed by the end of the top-level input
        assert len(scan_text(system.ns.read(PATH)).records) \
            == len(journal.records)


class TestTraceHooks:
    def test_shell_commands_are_traced(self):
        system, journal, _ = recorded_system()
        system.shell("/usr/rob").run("echo hi >/tmp/out")
        cmd = [r for r in journal.records if r.kind == "+cmd"]
        assert cmd and cmd[0].fields()[0] == "/usr/rob"
        assert "echo" in cmd[0].fields()

    def test_fs_mutations_are_traced(self):
        system, journal, _ = recorded_system()
        system.ns.write("/tmp/newfile", "x\n")
        fs = [r.fields() for r in journal.records if r.kind == "+fs"]
        assert ["write", "/tmp/newfile"] in fs

    def test_journals_own_file_is_not_traced(self):
        system, journal, _ = recorded_system()
        system.help.type_text("a")  # flushes to the journal file
        fs = [r.fields() for r in journal.records if r.kind == "+fs"]
        assert not any(path == PATH for _, path in fs)

    def test_screen_traces_when_asked(self):
        system, journal, _ = recorded_system(trace_screens=True)
        system.help.type_text("a")
        screens = [r for r in journal.records if r.kind == "+screen"]
        assert len(screens) == 1
        assert len(screens[0].fields()[0]) == 8  # a crc32, not a grid


class TestReplay:
    def test_round_trip_reproduces_the_screen(self):
        system, journal, _ = recorded_system()
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        scan = scan_text(system.ns.read(PATH))
        fresh = build_system(width=120, height=40)
        applied = replay(fresh.help, scan.records)
        assert applied == 1
        assert render_screen(fresh.help) == render_screen(h)
        assert counter("journal.replay.applied") == 1
        assert histograms("replay.apply_us")

    def test_derived_records_are_not_reapplied(self):
        system, journal, _ = recorded_system()
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        scan = scan_text(system.ns.read(PATH))
        fresh = build_system(width=120, height=40)
        before = len(fresh.help.windows)
        replay(fresh.help, scan.records)
        # the exec created its window by itself; had the +newwin trace
        # also been applied, there would be one window too many
        assert len(fresh.help.windows) \
            == before + (len(h.windows) - before)

    def test_genesis_mismatch_is_an_error(self):
        system, _, _ = recorded_system()
        scan = scan_text(system.ns.read(PATH))
        other = build_system(width=80, height=24)
        with pytest.raises(ReplayError, match="genesis"):
            replay(other.help, scan.records)

    def test_unknown_kind_is_an_error(self):
        fresh = build_system(width=120, height=40)
        with pytest.raises(ReplayError, match="unknown input kind"):
            replay(fresh.help, [make_record(1, "warp", ("9",))])


class TestDivergence:
    def test_identical_streams_agree(self):
        a = [make_record(1, "type", ("x",)), make_record(2, "+cmd", ("ls",))]
        assert divergence(a, a) is None

    def test_marks_are_ignored(self):
        a = [make_record(1, "type", ("x",)),
             make_record(2, "snapshot", ("dump",))]
        b = [make_record(1, "type", ("x",))]
        assert divergence(a, b) is None

    def test_first_divergent_seq_reported(self):
        a = [make_record(1, "type", ("x",)), make_record(5, "+cmd", ("ls",))]
        b = [make_record(1, "type", ("x",)), make_record(2, "+cmd", ("rm",))]
        seq, why = divergence(a, b)
        assert seq == 5
        assert "ls" in why and "rm" in why

    def test_length_mismatch_reported(self):
        a = [make_record(1, "type", ("x",)), make_record(2, "type", ("y",))]
        seq, why = divergence(a, a[:1])
        assert seq == 2
        assert "2 records" in why
