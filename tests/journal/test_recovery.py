"""Crash recovery: snapshot restore, renumbering, torn-tail replay."""

import pytest

from repro import build_system, render_screen
from repro.journal import Journal, attach
from repro.journal.record import FORMAT, scan_text
from repro.journal.recorder import ReplayError
from repro.journal.recovery import recover
from repro.metrics.counter import counter

PATH = "/usr/rob/help.journal"


def drive(snapshot_every=None):
    system = build_system(width=120, height=40)
    journal = Journal.create(system.ns, PATH)
    recorder = attach(system.help, journal, ns=system.ns,
                      snapshot_every=snapshot_every)
    h = system.help
    h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
    h.open_path("/usr/rob/lib/profile")
    w = h.open_path("/usr/rob/src/help/exec.c", line=30)
    h.select(w, 0, 5)
    journal.flush()
    return system, recorder


def reserialize(records):
    return FORMAT + "\n" + "".join(r.line() + "\n" for r in records)


class TestRecoverWithoutSnapshot:
    def test_full_replay_from_genesis(self):
        system, _ = drive()
        text = system.ns.read(PATH)
        fresh = build_system(width=120, height=40)
        report = recover(fresh.help, text)
        assert report.snapshot_seq is None
        assert report.applied == 4
        assert not report.torn
        assert render_screen(fresh.help) == render_screen(system.help)
        assert counter("journal.recover.count") == 1
        assert counter("journal.recover.torn") == 0


class TestRecoverFromSnapshot:
    def test_snapshot_shortcuts_the_prefix(self):
        system, recorder = drive(snapshot_every=3)
        text = system.ns.read(PATH)
        fresh = build_system(width=120, height=40)
        report = recover(fresh.help, text)
        assert report.snapshot_seq is not None
        assert report.applied < 4  # the snapshot subsumed the rest
        assert render_screen(fresh.help, full=True) \
            == render_screen(system.help, full=True)

    def test_window_ids_survive(self):
        system, recorder = drive()
        recorder.compact()
        text = system.ns.read(PATH)
        fresh = build_system(width=120, height=40)
        recover(fresh.help, text)
        assert sorted(fresh.help.windows) == sorted(system.help.windows)
        assert fresh.help._next_id == system.help._next_id

    def test_selection_and_state_survive(self):
        system, recorder = drive()
        system.help.snarf = "stashed text"
        recorder.compact()
        fresh = build_system(width=120, height=40)
        recover(fresh.help, system.ns.read(PATH))
        assert fresh.help.snarf == "stashed text"
        cur, sys_cur = fresh.help.current, system.help.current
        assert (cur[0].id, cur[1]) == (sys_cur[0].id, sys_cur[1])
        sel = cur[0].selection(cur[1])
        assert (sel.q0, sel.q1) == (0, 5)

    def test_no_current_selection_recovers(self):
        system = build_system(width=120, height=40)
        journal = Journal.create(system.ns, PATH)
        recorder = attach(system.help, journal, ns=system.ns)
        recorder.compact()
        fresh = build_system(width=120, height=40)
        recover(fresh.help, system.ns.read(PATH))
        assert fresh.help.current is None


class TestTornJournal:
    def test_torn_tail_recovers_to_last_applied_input(self):
        system, _ = drive()
        text = system.ns.read(PATH)
        complete = build_system(width=120, height=40)
        recover(complete.help, text)
        # tear the final record (the select): the write-ahead rule says
        # it may or may not have been applied, but the recovered state
        # must match the journal's intact prefix exactly
        torn = text[:-4]
        fresh = build_system(width=120, height=40)
        report = recover(fresh.help, torn)
        assert report.torn
        assert report.dropped == 1
        assert report.applied == 3
        assert counter("journal.recover.torn") == 1
        assert fresh.help.current != complete.help.current

    def test_incomplete_snapshot_group_is_skipped(self):
        system, recorder = drive()
        recorder.compact()
        records = scan_text(system.ns.read(PATH)).records
        assert [r.kind for r in records][:3] == ["snapshot", "wids", "state"]
        # crash between wids and state: the group is unusable, and with
        # the pre-snapshot prefix compacted away there is nothing to
        # replay — recovery must fail loudly, not half-restore
        fresh = build_system(width=120, height=40)
        report = recover(fresh.help, reserialize(records[:2]))
        assert report.snapshot_seq is None
        assert report.applied == 0

    def test_wids_mismatch_is_an_error(self):
        system, recorder = drive()
        recorder.compact()
        records = scan_text(system.ns.read(PATH)).records
        wids = records[1]
        fields = wids.fields()
        from repro.journal.record import make_record
        tampered = make_record(wids.seq, "wids", fields[:-1])  # one id short
        fresh = build_system(width=120, height=40)
        with pytest.raises(ReplayError, match="wids record names"):
            recover(fresh.help, reserialize([records[0], tampered,
                                             records[2]]))


class TestRecoveryEdgeCases:
    """The journals a crash (or an empty spool slot) actually leaves."""

    def test_zero_length_journal_recovers_to_fresh_boot(self):
        # a spool file created but never written: recovery must land on
        # the freshly booted world, reporting the damage, not crash
        fresh = build_system(width=120, height=40)
        baseline = render_screen(fresh.help)
        report = recover(fresh.help, "")
        assert report.torn
        assert report.applied == 0
        assert report.inputs == 0
        assert report.snapshot_seq is None
        assert any("header" in p for p in report.problems)
        assert render_screen(fresh.help) == baseline

    def test_snapshot_group_with_empty_suffix(self):
        # a hibernation wake's text: header + group, nothing to replay —
        # the "inputs" mark alone must carry the resume index
        system, recorder = drive()
        recorder.compact()
        text = system.ns.read(PATH)
        fresh = build_system(width=120, height=40)
        report = recover(fresh.help, text)
        assert report.snapshot_seq is not None
        assert report.applied == 0
        assert report.inputs == recorder.inputs_recorded == 4
        assert not report.torn
        assert render_screen(fresh.help, full=True) \
            == render_screen(system.help, full=True)

    def test_torn_write_inside_snapshot_group(self):
        # crash mid-compaction: the state record is half-written.  The
        # group is unusable and must be skipped whole — no half-restore
        # of a snapshot whose companions are gone
        system, recorder = drive()
        recorder.compact()
        text = system.ns.read(PATH)
        lines = text.splitlines(keepends=True)
        assert [l.split(" ", 3)[2] for l in lines[1:4]] \
            == ["snapshot", "wids", "state"]
        torn = "".join(lines[:3]) + lines[3][:len(lines[3]) // 2]
        fresh = build_system(width=120, height=40)
        baseline = render_screen(fresh.help)
        report = recover(fresh.help, torn)
        assert report.torn
        assert report.snapshot_seq is None
        assert report.applied == 0
        assert render_screen(fresh.help) == baseline
