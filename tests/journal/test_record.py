"""The record format: codec, checksums, and intact-prefix scanning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.journal.record import (
    APPLY_KINDS,
    FORMAT,
    MARK_KINDS,
    BadChecksum,
    BadRecord,
    Record,
    checksum,
    dec,
    enc,
    make_record,
    parse_line,
    scan_text,
)
from repro.metrics.counter import counter


def journal_text(*records):
    return FORMAT + "\n" + "".join(r.line() + "\n" for r in records)


class TestCodec:
    def test_plain_token_unchanged(self):
        assert enc("headers") == "headers"

    def test_whitespace_never_survives_encoding(self):
        for raw in ("a b", "a\tb", "a\nb", "a\rb", " lead", "trail "):
            encoded = enc(raw)
            assert " " not in encoded
            assert "\n" not in encoded
            assert dec(encoded) == raw

    def test_empty_token_representable(self):
        assert enc("") == "\\e"
        assert dec("\\e") == ""

    def test_backslash_escapes_itself(self):
        assert dec(enc("back\\slash")) == "back\\slash"
        # a literal backslash-e is not the empty sentinel
        assert dec(enc("\\e")) == "\\e"

    @given(st.text(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_is_identity(self, s):
        assert dec(enc(s)) == s

    @given(st.lists(st.text(max_size=40), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_fields_survive_a_record_line(self, fields):
        record = make_record(1, "type", fields)
        assert parse_line(record.line()).fields() == [str(f) for f in fields]


class TestRecord:
    def test_line_layout(self):
        record = make_record(7, "exec", ("3", "body", "headers"))
        seq, crc, kind, payload = record.line().split(" ", 3)
        assert (seq, kind, payload) == ("7", "exec", "3 body headers")
        assert crc == checksum(7, "exec", "3 body headers")

    def test_payloadless_line(self):
        record = Record(1, "genesis")
        assert record.line() == f"1 {checksum(1, 'genesis', '')} genesis"
        assert record.fields() == []

    def test_classes_are_disjoint(self):
        assert not APPLY_KINDS & MARK_KINDS
        assert Record(1, "+cmd").derived
        assert not Record(1, "+cmd").applies
        assert Record(1, "type").applies
        assert not Record(1, "snapshot").applies

    def test_parse_rejects_short_line(self):
        with pytest.raises(BadRecord, match="short record"):
            parse_line("1 abcd")

    def test_parse_rejects_bad_seq(self):
        with pytest.raises(BadRecord, match="sequence"):
            parse_line("one 00000000 type x")

    def test_parse_rejects_corrupt_payload(self):
        line = make_record(3, "type", ("hello",)).line()
        with pytest.raises(BadChecksum, match="seq 3"):
            parse_line(line.replace("hello", "hellp"))


class TestScan:
    def records(self, n=4):
        return [make_record(i, "type", (f"t{i}",)) for i in range(1, n + 1)]

    def test_clean_journal(self):
        scan = scan_text(journal_text(*self.records()))
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]
        assert not scan.torn
        assert scan.dropped == 0
        assert counter("journal.replay.records") == 4
        assert counter("journal.checksum.failed") == 0

    def test_torn_tail_keeps_intact_prefix(self):
        text = journal_text(*self.records())
        torn = text[:-3]  # tear the last record mid-payload
        scan = scan_text(torn)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.torn
        assert scan.dropped == 1
        assert counter("journal.checksum.failed") == 1

    def test_tear_mid_checksum_is_structural_damage(self):
        text = journal_text(*self.records())
        torn = text[:-10]  # leaves "4 ff28a64": too short to parse
        scan = scan_text(torn)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.torn
        assert counter("journal.checksum.failed") == 0

    def test_damage_ends_the_prefix_even_with_good_lines_after(self):
        good = self.records()
        lines = journal_text(*good).split("\n")
        lines[2] = "garbage"  # seq 2 damaged, seq 3-4 still well-formed
        scan = scan_text("\n".join(lines))
        assert [r.seq for r in scan.records] == [1]
        assert scan.dropped == 3

    def test_sequence_regression_is_damage(self):
        a, b = make_record(5, "type", ("x",)), make_record(4, "type", ("y",))
        scan = scan_text(journal_text(a, b))
        assert [r.seq for r in scan.records] == [5]
        assert scan.torn
        assert "sequence 4 after 5" in scan.problems[0]

    def test_missing_header(self):
        scan = scan_text("not a journal\n1 00000000 type x\n")
        assert scan.torn
        assert scan.records == []
        assert "header" in scan.problems[0]

    def test_blank_lines_are_not_damage(self):
        scan = scan_text(journal_text(*self.records()) + "\n\n")
        assert len(scan.records) == 4
        assert not scan.torn
