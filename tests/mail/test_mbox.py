"""Tests for mbox parsing and the Mailbox API."""

import pytest

from repro.fs import VFS, Namespace
from repro.mail import Mailbox, Message, sample_mailbox
from repro.mail.mbox import format_mbox, parse_mbox


@pytest.fixture
def ns():
    fs = VFS()
    fs.mkdir("/mail/box/rob", parents=True)
    return Namespace(fs)


class TestParseFormat:
    def test_roundtrip(self):
        messages = [
            Message("sean", "Tue Apr 16 19:26:14 EDT 1991", "hello\nthere\n"),
            Message("howard", "Tue Apr 16 15:02 EDT 1991", "lunch?\n"),
        ]
        assert parse_mbox(format_mbox(messages)) == messages

    def test_parse_empty(self):
        assert parse_mbox("") == []

    def test_from_quoting(self):
        messages = [Message("a", "d", "From the start\n")]
        text = format_mbox(messages)
        assert ">From the start" in text
        assert parse_mbox(text) == messages

    def test_multiline_bodies(self):
        text = ("From a Mon\nline1\nline2\n\n"
                "From b Tue\nline3\n\n")
        parsed = parse_mbox(text)
        assert [m.sender for m in parsed] == ["a", "b"]
        assert parsed[0].body == "line1\nline2\n"

    def test_header_line(self):
        m = Message("sean", "Tue Apr 16", "x")
        assert m.header_line() == "sean Tue Apr 16"

    def test_render(self):
        m = Message("sean", "Tue", "body\n")
        assert m.render() == "From sean Tue\nbody\n"


class TestMailbox:
    def test_append_and_messages(self, ns):
        box = Mailbox(ns)
        box.append(Message("a", "Mon", "one\n"))
        box.append(Message("b", "Tue", "two\n"))
        assert [m.sender for m in box.messages()] == ["a", "b"]

    def test_missing_box_is_empty(self, ns):
        assert Mailbox(ns, "/mail/box/rob/none").messages() == []

    def test_get_by_number(self, ns):
        box = Mailbox(ns)
        box.append(Message("a", "Mon", "one\n"))
        assert box.get(1).sender == "a"
        with pytest.raises(IndexError):
            box.get(2)
        with pytest.raises(IndexError):
            box.get(0)

    def test_delete_renumbers(self, ns):
        box = Mailbox(ns)
        for who in ("a", "b", "c"):
            box.append(Message(who, "Mon", "x\n"))
        removed = box.delete(2)
        assert removed.sender == "b"
        assert [m.sender for m in box.messages()] == ["a", "c"]
        assert box.get(2).sender == "c"

    def test_headers_numbered(self, ns):
        box = Mailbox(ns)
        box.append(Message("sean", "Tue", "x\n"))
        assert box.headers() == "1 sean Tue\n"


class TestSampleMailbox:
    def test_seven_messages(self, ns):
        box = sample_mailbox(ns)
        assert len(box.messages()) == 7

    def test_sean_is_message_two(self, ns):
        box = sample_mailbox(ns)
        sean = box.get(2)
        assert sean.sender == "sean"
        assert "TLB miss" in sean.body
        assert "176153" in sean.body

    def test_figure5_order(self, ns):
        box = sample_mailbox(ns)
        senders = [m.sender for m in box.messages()]
        assert senders[0] == "chk@alias.com"
        assert senders[5] == "howard"
