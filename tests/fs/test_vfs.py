"""Unit tests for the in-memory VFS."""

import pytest

from repro.fs import VFS, FsError
from repro.fs.vfs import basename, dirname, join, normalize, split_path


@pytest.fixture
def vfs():
    fs = VFS()
    fs.mkdir("/usr/rob/src/help", parents=True)
    fs.create("/usr/rob/src/help/help.c", "int main;\n")
    fs.create("/usr/rob/src/help/dat.h", "typedef struct Text Text;\n")
    return fs


class TestPaths:
    def test_normalize_collapses_slashes(self):
        assert normalize("//usr///rob/") == "/usr/rob"

    def test_normalize_root(self):
        assert normalize("/") == "/"
        assert normalize("") == "/"

    def test_normalize_dot(self):
        assert normalize("/usr/./rob") == "/usr/rob"

    def test_normalize_dotdot(self):
        assert normalize("/usr/rob/../ken") == "/usr/ken"

    def test_normalize_dotdot_at_root(self):
        assert normalize("/../..") == "/"

    def test_split_path(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []

    def test_join_relative(self):
        assert join("/usr/rob", "src") == "/usr/rob/src"

    def test_join_absolute_wins(self):
        assert join("/usr/rob", "/bin/rc") == "/bin/rc"

    def test_basename_dirname(self):
        assert basename("/usr/rob/profile") == "profile"
        assert dirname("/usr/rob/profile") == "/usr/rob"
        assert dirname("/profile") == "/"
        assert basename("/") == ""


class TestCreation:
    def test_mkdir_and_exists(self, vfs):
        assert vfs.isdir("/usr/rob/src/help")
        assert not vfs.isdir("/usr/rob/src/help/help.c")

    def test_mkdir_without_parents_fails(self, vfs):
        with pytest.raises(FsError):
            vfs.mkdir("/no/such/dir")

    def test_mkdir_existing_fails(self, vfs):
        with pytest.raises(FsError, match="already exists"):
            vfs.mkdir("/usr/rob")

    def test_mkdir_existing_with_parents_ok(self, vfs):
        vfs.mkdir("/usr/rob", parents=True)  # no error

    def test_create_in_missing_dir_fails(self, vfs):
        with pytest.raises(FsError, match="does not exist"):
            vfs.create("/nowhere/f", "x")

    def test_create_over_dir_fails(self, vfs):
        with pytest.raises(FsError, match="is a directory"):
            vfs.create("/usr/rob", "x")

    def test_create_truncates_existing(self, vfs):
        vfs.create("/usr/rob/src/help/help.c", "new\n")
        assert vfs.read("/usr/rob/src/help/help.c") == "new\n"


class TestIO:
    def test_read_write_roundtrip(self, vfs):
        vfs.write("/usr/rob/f", "hello\n")
        assert vfs.read("/usr/rob/f") == "hello\n"

    def test_append(self, vfs):
        vfs.write("/f", "a")
        vfs.append("/f", "b")
        assert vfs.read("/f") == "ab"

    def test_append_creates(self, vfs):
        vfs.append("/g", "x")
        assert vfs.read("/g") == "x"

    def test_read_missing_fails(self, vfs):
        with pytest.raises(FsError, match="does not exist"):
            vfs.read("/missing")

    def test_open_dir_fails(self, vfs):
        with pytest.raises(FsError, match="is a directory"):
            vfs.open("/usr/rob")

    def test_partial_reads(self, vfs):
        vfs.write("/f", "abcdef")
        with vfs.open("/f") as f:
            assert f.read(2) == "ab"
            assert f.read(2) == "cd"
            assert f.read() == "ef"
            assert f.read() == ""

    def test_seek(self, vfs):
        vfs.write("/f", "abcdef")
        with vfs.open("/f") as f:
            f.seek(4)
            assert f.read() == "ef"

    def test_seek_clamped(self, vfs):
        vfs.write("/f", "ab")
        with vfs.open("/f") as f:
            f.seek(99)
            assert f.read() == ""
            f.seek(-5)
            assert f.read() == "ab"

    def test_readlines(self, vfs):
        vfs.write("/f", "a\nb\nc")
        with vfs.open("/f") as f:
            assert f.readlines() == ["a\n", "b\n", "c"]

    def test_write_mode_truncates(self, vfs):
        vfs.write("/f", "long contents")
        with vfs.open("/f", "w") as f:
            f.write("x")
        assert vfs.read("/f") == "x"

    def test_rw_mode_overwrites_in_place(self, vfs):
        vfs.write("/f", "abcdef")
        with vfs.open("/f", "rw") as f:
            f.write("XY")
        assert vfs.read("/f") == "XYcdef"

    def test_read_on_write_handle_fails(self, vfs):
        with vfs.open("/f", "w") as f:
            with pytest.raises(FsError):
                f.read()

    def test_write_on_read_handle_fails(self, vfs):
        vfs.write("/f", "x")
        with vfs.open("/f") as f:
            with pytest.raises(FsError):
                f.write("y")

    def test_closed_handle_fails(self, vfs):
        vfs.write("/f", "x")
        f = vfs.open("/f")
        f.close()
        with pytest.raises(FsError):
            f.read()

    def test_bad_mode(self, vfs):
        with pytest.raises(FsError, match="bad open mode"):
            vfs.open("/usr/rob/src/help/help.c", "x")


class TestListingRemoval:
    def test_listdir_sorted(self, vfs):
        assert vfs.listdir("/usr/rob/src/help") == ["dat.h", "help.c"]

    def test_listdir_file_fails(self, vfs):
        with pytest.raises(FsError, match="is not a directory"):
            vfs.listdir("/usr/rob/src/help/help.c")

    def test_remove_file(self, vfs):
        vfs.remove("/usr/rob/src/help/dat.h")
        assert not vfs.exists("/usr/rob/src/help/dat.h")

    def test_remove_nonempty_dir_fails(self, vfs):
        with pytest.raises(FsError, match="not empty"):
            vfs.remove("/usr/rob/src")

    def test_remove_empty_dir(self, vfs):
        vfs.mkdir("/tmp")
        vfs.remove("/tmp")
        assert not vfs.exists("/tmp")

    def test_remove_missing_fails(self, vfs):
        with pytest.raises(FsError):
            vfs.remove("/missing")


class TestClock:
    def test_mtime_advances_on_write(self, vfs):
        vfs.write("/a", "1")
        t1 = vfs.mtime("/a")
        vfs.write("/b", "2")
        assert vfs.mtime("/b") > t1

    def test_touch_bumps(self, vfs):
        vfs.write("/a", "1")
        t1 = vfs.mtime("/a")
        vfs.touch("/a")
        assert vfs.mtime("/a") > t1
        assert vfs.read("/a") == "1"

    def test_touch_creates(self, vfs):
        vfs.touch("/new")
        assert vfs.read("/new") == ""

    def test_append_updates_mtime(self, vfs):
        vfs.write("/a", "1")
        t1 = vfs.mtime("/a")
        vfs.append("/a", "2")
        assert vfs.mtime("/a") > t1


class TestGlob:
    def test_star_suffix(self, vfs):
        assert vfs.glob("/usr/rob/src/help/*.c") == ["/usr/rob/src/help/help.c"]

    def test_star_all(self, vfs):
        got = vfs.glob("/usr/rob/src/help/*")
        assert got == ["/usr/rob/src/help/dat.h", "/usr/rob/src/help/help.c"]

    def test_question_mark(self, vfs):
        vfs.create("/usr/rob/src/help/a.c", "")
        vfs.create("/usr/rob/src/help/b.c", "")
        assert vfs.glob("/usr/rob/src/help/?.c") == [
            "/usr/rob/src/help/a.c",
            "/usr/rob/src/help/b.c",
        ]

    def test_star_in_middle_component(self, vfs):
        assert vfs.glob("/usr/*/src/help/help.c") == ["/usr/rob/src/help/help.c"]

    def test_no_match_is_empty(self, vfs):
        assert vfs.glob("/usr/rob/*.zig") == []

    def test_literal_path(self, vfs):
        assert vfs.glob("/usr/rob/src") == ["/usr/rob/src"]
