"""The multiplexed transport: sessions, concurrency, backpressure, faults."""

import threading

import pytest

from repro.fs import wire
from repro.fs.errors import (
    Closed,
    Invalid,
    IOFault,
    IsADirectory,
    NotFound,
    Permission,
)
from repro.fs.faults import Fault, FaultPlan
from repro.fs.mux import (
    FrameReader,
    MuxClient,
    WireServer,
    channel_pair,
    dial,
    mount_remote,
)
from repro.fs.namespace import Namespace
from repro.fs.server import SynthDir, SynthFile
from repro.fs.vfs import VFS
from repro.metrics.counter import counter, counters


def make_tree():
    vfs = VFS()
    vfs.mkdir("/docs", parents=True)
    vfs.write("/docs/a.txt", "alpha\n")
    vfs.write("/docs/b.txt", "bravo\n")
    vfs.write("/notes.txt", "top note\n")
    return vfs


@pytest.fixture
def pipe_world():
    vfs = make_tree()
    server = WireServer(vfs.root, clock=vfs.clock)
    client_end, server_end = channel_pair()
    server.serve(server_end)
    client = MuxClient(client_end)
    yield vfs, server, client
    client.close()
    server.close()


class TestBasicService:
    def test_read_through_remote_mount(self, pipe_world):
        vfs, server, client = pipe_world
        ns = Namespace(VFS())
        ns.mkdir("/mnt/far", parents=True)
        ns.mount(mount_remote(client), "/mnt/far")
        assert ns.read("/mnt/far/docs/a.txt") == "alpha\n"
        assert ns.listdir("/mnt/far") == ["docs", "notes.txt"]
        assert ns.listdir("/mnt/far/docs") == ["a.txt", "b.txt"]

    def test_write_reaches_the_served_tree(self, pipe_world):
        vfs, server, client = pipe_world
        ns = Namespace(VFS())
        ns.mkdir("/mnt/far", parents=True)
        ns.mount(mount_remote(client), "/mnt/far")
        ns.write("/mnt/far/notes.txt", "rewritten\n")
        assert vfs.read("/notes.txt") == "rewritten\n"
        ns.append("/mnt/far/notes.txt", "more\n")
        assert vfs.read("/notes.txt") == "rewritten\nmore\n"

    def test_glob_and_exists_through_the_wire(self, pipe_world):
        _, _, client = pipe_world
        ns = Namespace(VFS())
        ns.mkdir("/mnt/far", parents=True)
        ns.mount(mount_remote(client), "/mnt/far")
        assert ns.glob("/mnt/far/docs/*.txt") == [
            "/mnt/far/docs/a.txt", "/mnt/far/docs/b.txt"]
        assert ns.exists("/mnt/far/docs/a.txt")
        assert not ns.exists("/mnt/far/docs/zzz.txt")

    def test_clean_miss_is_not_an_error(self, pipe_world):
        """Probing a missing path mirrors local resolve(): no taxonomy
        error is constructed on either side of the wire."""
        _, _, client = pipe_world
        root = mount_remote(client)
        before = dict(counters("fs.error"))
        assert root.lookup("absent") is None
        assert dict(counters("fs.error")) == before

    def test_missing_file_open_raises_notfound(self, pipe_world):
        _, _, client = pipe_world
        ns = Namespace(VFS())
        ns.mkdir("/mnt/far", parents=True)
        ns.mount(mount_remote(client), "/mnt/far")
        with pytest.raises(NotFound):
            ns.read("/mnt/far/docs/zzz.txt")

    def test_sequential_reads_and_seek(self, pipe_world):
        _, _, client = pipe_world
        root = mount_remote(client)
        f = root.lookup("notes.txt")
        with f.open("r") as session:
            assert session.read(3) == "top"
            assert session.read(1) == " "
            session.seek(0)
            assert session.read() == "top note\n"

    def test_mtime_travels_with_stat(self, pipe_world):
        vfs, _, client = pipe_world
        root = mount_remote(client)
        node = root.lookup("notes.txt")
        assert node.mtime == vfs.walk("/notes.txt").mtime

    def test_remote_dir_refuses_local_mutation(self, pipe_world):
        _, _, client = pipe_world
        root = mount_remote(client)
        from repro.fs.vfs import File
        with pytest.raises(Invalid):
            root.attach(File("x"))
        with pytest.raises(Invalid):
            root.detach("notes.txt")

    def test_open_directory_is_error(self, pipe_world):
        _, _, client = pipe_world
        fid = client.walk_fid("/docs")
        with pytest.raises(IsADirectory):
            client.rpc(wire.Topen(fid=fid, mode="r"))
        client.clunk(fid)

    def test_error_classes_cross_the_wire_intact(self, pipe_world):
        """A Permission raised server-side arrives as Permission, with
        path and op preserved for the diagnostic."""
        vfs, server, client = pipe_world
        guarded = SynthFile("sealed", read_fn=lambda: "secret\n")
        vfs.root.attach(guarded)
        root = mount_remote(client)
        node = root.lookup("sealed")
        with pytest.raises(Permission) as exc_info:
            node.open("w")
        assert exc_info.value.kind == "perm"
        assert exc_info.value.op == "open"


class TestSocketTransport:
    def test_full_service_over_tcp(self):
        vfs = make_tree()
        with WireServer(vfs.root, clock=vfs.clock) as server:
            host, port = server.listen()
            with MuxClient(dial(host, port)) as client:
                ns = Namespace(VFS())
                ns.mkdir("/mnt/far", parents=True)
                ns.mount(mount_remote(client), "/mnt/far")
                assert ns.read("/mnt/far/docs/b.txt") == "bravo\n"
                ns.write("/mnt/far/docs/b.txt", "changed\n")
                assert vfs.read("/docs/b.txt") == "changed\n"

    def test_many_clients_one_listener(self):
        vfs = make_tree()
        with WireServer(vfs.root) as server:
            host, port = server.listen()
            clients = [MuxClient(dial(host, port)) for _ in range(4)]
            try:
                for i, client in enumerate(clients):
                    root = mount_remote(client)
                    assert root.lookup("docs") is not None
                    with root.lookup("notes.txt").open("r") as s:
                        assert s.read() == "top note\n"
            finally:
                for client in clients:
                    client.close()


class TestShortReads:
    @pytest.mark.parametrize("chunk", [1, 3, 13])
    def test_frames_reassemble_from_tiny_chunks(self, chunk):
        """Every byte boundary is a valid split point for the framing."""
        vfs = make_tree()
        server = WireServer(vfs.root)
        client_end, server_end = channel_pair(max_chunk=chunk)
        server.serve(server_end)
        client = MuxClient(client_end)
        try:
            root = mount_remote(client)
            assert root.lookup("docs").lookup("a.txt") is not None
            with root.lookup("docs").lookup("a.txt").open("r") as s:
                assert s.read() == "alpha\n"
        finally:
            client.close()
            server.close()

    def test_frame_reader_survives_split_frames(self):
        a, b = channel_pair(max_chunk=2)
        frame = wire.encode(wire.Rread(tag=9, data="hello world"))
        threading.Thread(target=lambda: a.send(frame), daemon=True).start()
        reader = FrameReader(b)
        msg = reader.next_frame()
        assert isinstance(msg, wire.Rread)
        assert msg.data == "hello world"

    def test_mid_frame_eof_is_iofault(self):
        a, b = channel_pair()
        frame = wire.encode(wire.Rread(tag=1, data="partial"))
        a.send(frame[:9])
        a.close()
        reader = FrameReader(b)
        with pytest.raises(IOFault):
            reader.next_frame()


class TestConcurrency:
    def test_concurrent_sessions_share_one_server(self):
        """Four clients on four threads hammer reads and writes; every
        session sees consistent data and the inflight gauge drains."""
        vfs = VFS()
        for i in range(4):
            vfs.write(f"/f{i}.txt", f"seed {i}\n")
        server = WireServer(vfs.root, clock=vfs.clock)
        channels = []
        for _ in range(4):
            client_end, server_end = channel_pair()
            server.serve(server_end)
            channels.append(client_end)
        clients = [MuxClient(chan) for chan in channels]
        failures: list[BaseException] = []

        def hammer(idx: int) -> None:
            try:
                root = mount_remote(clients[idx])
                node = root.lookup(f"f{idx}.txt")
                for round_no in range(25):
                    with node.open("w") as s:
                        s.write(f"client {idx} round {round_no}\n")
                    with node.open("r") as s:
                        assert s.read() == f"client {idx} round {round_no}\n"
            except BaseException as exc:  # noqa: BLE001 - collected below
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        for client in clients:
            client.close()
        server.close()
        assert not failures, failures
        assert counter("mux.inflight") == 0

    def test_tagged_requests_multiplex_on_one_connection(self):
        """Many threads share one MuxClient; tags keep replies straight."""
        vfs = VFS()
        for i in range(8):
            vfs.write(f"/f{i}.txt", f"payload {i}\n")
        server = WireServer(vfs.root)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end, max_outstanding=8)
        failures: list[BaseException] = []

        def reader(idx: int) -> None:
            try:
                for _ in range(20):
                    fid = client.walk_fid(f"/f{idx}.txt")
                    client.rpc(wire.Topen(fid=fid, mode="r"))
                    reply = client.rpc(wire.Tread(fid=fid, count=-1))
                    assert reply.data == f"payload {idx}\n"
                    client.clunk(fid)
            except BaseException as exc:  # noqa: BLE001 - collected below
                failures.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        client.close()
        server.close()
        assert not failures, failures


class TestBackpressure:
    def test_server_refuses_excess_inflight_requests(self):
        """A client that ignores flow control gets busy errors, not an
        unbounded queue: raw frames bypass MuxClient's semaphore."""
        slow_gate = threading.Event()

        def slow_read() -> str:
            slow_gate.wait(5)
            return "done\n"

        root = SynthDir("/", list_fn=lambda: [
            SynthFile("slow", read_fn=slow_read)])
        server = WireServer(root, max_outstanding=2, workers=2,
                            serialize=False)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        try:
            client_end.send(wire.encode(wire.Tattach(tag=0, fid=0)))
            reader = FrameReader(client_end)
            assert isinstance(reader.next_frame(), wire.Rattach)
            # open two fids on the slow file, then saturate with reads
            for fid in (1, 2, 3):
                client_end.send(wire.encode(
                    wire.Twalk(tag=fid, fid=0, newfid=fid, names=["slow"])))
                assert isinstance(reader.next_frame(), wire.Rwalk)
                client_end.send(wire.encode(
                    wire.Topen(tag=fid, fid=fid, mode="r")))
                assert isinstance(reader.next_frame(), wire.Ropen)
            for tag, fid in ((10, 1), (11, 2), (12, 3)):
                client_end.send(wire.encode(
                    wire.Tread(tag=tag, fid=fid, count=-1)))
            # two stall in the workers; the third must bounce as busy
            reply = reader.next_frame()
            assert isinstance(reply, wire.Rerror)
            assert reply.tag == 12
            assert reply.kind == "busy"
            slow_gate.set()
            got = {reader.next_frame().tag for _ in range(2)}
            assert got == {10, 11}
        finally:
            slow_gate.set()
            server.close()

    def test_client_semaphore_bounds_inflight(self):
        """MuxClient never exceeds its own max_outstanding, so a well-
        behaved client never sees the server's busy reply."""
        vfs = make_tree()
        server = WireServer(vfs.root, max_outstanding=2)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end, max_outstanding=2)
        failures: list[BaseException] = []

        def spin() -> None:
            try:
                for _ in range(10):
                    assert client.probe("/notes.txt") is not None
            except BaseException as exc:  # noqa: BLE001 - collected below
                failures.append(exc)

        threads = [threading.Thread(target=spin) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        client.close()
        server.close()
        assert not failures, failures


class TestTransportFaults:
    def test_fault_plan_applies_at_the_wire(self):
        """PR 2's fault schedules work unchanged against remote trees."""
        vfs = make_tree()
        plan = FaultPlan(
            Fault(op="open", path="/docs/a.txt", at=2),
            Fault(op="read", path="/notes.txt", at=1, short=3),
        )
        server = WireServer(vfs.root, plan=plan)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        try:
            root = mount_remote(client)
            a = root.lookup("docs").lookup("a.txt")
            with a.open("r") as s:
                assert s.read() == "alpha\n"
            with pytest.raises(IOFault):
                a.open("r")  # second open: scheduled fault
            with root.lookup("notes.txt").open("r") as s:
                assert s.read() == "top"  # short read truncates to 3
            assert plan.injected == 2
        finally:
            client.close()
            server.close()

    def test_close_time_fault_surfaces_at_clunk(self):
        vfs = make_tree()
        plan = FaultPlan(Fault(op="close", path="/notes.txt", at=1))
        server = WireServer(vfs.root, plan=plan)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        try:
            session = mount_remote(client).lookup("notes.txt").open("r")
            assert session.read() == "top note\n"
            with pytest.raises(IOFault):
                session.close()
            assert session.closed  # closed locally despite the error
        finally:
            client.close()
            server.close()

    def test_dead_server_fails_pending_rpcs(self):
        vfs = make_tree()
        server = WireServer(vfs.root)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        server.close()
        with pytest.raises((IOFault, Closed)):
            for _ in range(3):  # the close can race the first probe
                client.probe("/notes.txt")
        client.close()

    def test_rpc_after_client_close_raises_closed(self):
        vfs = make_tree()
        server = WireServer(vfs.root)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        client.close()
        with pytest.raises((Closed, IOFault)):
            client.probe("/notes.txt")
        server.close()


class TestFidHygiene:
    def test_walk_to_unknown_fid_is_invalid(self, pipe_world):
        _, _, client = pipe_world
        with pytest.raises(Invalid):
            client.rpc(wire.Twalk(fid=999, newfid=1000, names=[]))

    def test_read_without_open_is_invalid(self, pipe_world):
        _, _, client = pipe_world
        fid = client.walk_fid("/notes.txt")
        with pytest.raises(Invalid):
            client.rpc(wire.Tread(fid=fid, count=-1))
        client.clunk(fid)

    def test_double_open_on_one_fid_is_invalid(self, pipe_world):
        _, _, client = pipe_world
        fid = client.walk_fid("/notes.txt")
        client.rpc(wire.Topen(fid=fid, mode="r"))
        with pytest.raises(Invalid):
            client.rpc(wire.Topen(fid=fid, mode="r"))
        client.clunk(fid)

    def test_clunk_twice_is_invalid(self, pipe_world):
        _, _, client = pipe_world
        fid = client.walk_fid("/notes.txt")
        client.rpc(wire.Tclunk(fid=fid))
        with pytest.raises(Invalid):
            client.rpc(wire.Tclunk(fid=fid))

    def test_fids_are_recycled(self, pipe_world):
        _, _, client = pipe_world
        fid1 = client.walk_fid("/notes.txt")
        client.clunk(fid1)
        fid2 = client.walk_fid("/docs")
        assert fid2 == fid1  # the freed fid is reused
        client.clunk(fid2)

    def test_teardown_closes_open_sessions(self):
        """Dropping a connection flushes server-side sessions: the
        unterminated tail a writer left behind still lands."""
        got: list[str] = []
        root = SynthDir("/", list_fn=lambda: [
            SynthFile("sink", write_fn=got.append)])
        server = WireServer(root)
        client_end, server_end = channel_pair()
        thread = server.serve(server_end)
        client = MuxClient(client_end)
        session = mount_remote(client).lookup("sink").open("w")
        session.write("no newline yet")
        client_end.close()  # vanish without clunking
        thread.join(timeout=5)
        assert got == ["no newline yet"]
        server.close()


class TestMetrics:
    def test_rpc_counters_and_histograms_record(self):
        from repro.metrics.counter import histograms
        vfs = make_tree()
        server = WireServer(vfs.root)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        before = counter("wire.rpc.read")
        bytes_before = counter("wire.bytes.in")
        with mount_remote(client).lookup("notes.txt").open("r") as s:
            s.read()
        assert counter("wire.rpc.read") == before + 1
        assert counter("wire.bytes.in") > bytes_before
        stats = histograms("wire.rpc.")
        assert "wire.rpc.read" in stats
        assert stats["wire.rpc.read"]["count"] >= 1
        assert "mux.rpc.read" in histograms("mux.rpc.")
        client.close()
        server.close()


class TestHelpOverTheWire:
    def test_help_session_runs_against_remote_mnt_help(self):
        """The acceptance property in miniature: a tool script drives
        windows through a socket-served /mnt/help, unchanged."""
        from repro.tools.install import build_system
        system = build_system(width=100, height=40)
        server = WireServer(system.helpfs.root)
        host, port = server.listen()
        client = MuxClient(dial(host, port))
        try:
            system.ns.unmount("/mnt/help")
            system.ns.mount(mount_remote(client), "/mnt/help")
            h = system.help
            before = set(h.windows)
            h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
            mbox = h.window_by_name("/mail/box/rob/mbox")
            assert mbox is not None
            assert mbox.body.string().splitlines()[1].startswith("2 sean")
            assert set(h.windows) - before  # a window really was created
            # and the index file reads back through the wire too
            index = system.ns.read("/mnt/help/index")
            assert f"{mbox.id}\t" in index
            assert counter("wire.rpc.open") > 0
        finally:
            client.close()
            server.close()

    def test_ctl_errors_reach_the_errors_window_remotely(self):
        from repro.core.help import ERRORS
        from repro.tools.install import build_system
        system = build_system(width=100, height=40)
        server = WireServer(system.helpfs.root)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        client = MuxClient(client_end)
        try:
            system.ns.unmount("/mnt/help")
            system.ns.mount(mount_remote(client), "/mnt/help")
            h = system.help
            w = h.new_window("/tmp/x", "hello\n")
            with system.ns.open(f"/mnt/help/{w.id}/ctl", "w") as f:
                f.write("no-such-verb 1 2\n")
            errors = h.window_by_name(ERRORS)
            assert errors is not None
            assert "no-such-verb" in errors.body.string()
        finally:
            client.close()
            server.close()
