"""Event-loop edge cases: split frames, dead clients, slow readers.

The reactor rewrite moved every connection onto one selector thread
with incremental zero-copy parsing and per-connection write queues;
these tests pin the failure modes that design must absorb — a frame
arriving one byte at a time, a client vanishing while its RPC is still
in a worker, and a reader slow enough to fill the write queue and
trip backpressure.
"""

import threading
import time

from repro.fs import wire
from repro.fs.mux import FrameReader, WireServer, channel_pair, dial
from repro.fs.server import SynthDir, SynthFile
from repro.fs.vfs import VFS
from repro.metrics.counter import MetricsRegistry


def make_tree():
    vfs = VFS()
    vfs.write("/notes.txt", "top note\n")
    return vfs


class TestPartialFrames:
    def test_frames_split_across_many_reads(self):
        """One byte per send, three bytes per server read: every frame
        spans many reads and every read holds partial frames."""
        vfs = make_tree()
        server = WireServer(vfs.root, clock=vfs.clock)
        client_end, server_end = channel_pair(max_chunk=3)
        server.serve(server_end)
        try:
            stream = (
                wire.encode(wire.Tattach(tag=0, fid=0))
                + wire.encode(wire.Twalk(tag=1, fid=0, newfid=1,
                                         names=["notes.txt"]))
                + wire.encode(wire.Topen(tag=2, fid=1, mode="r"))
                + wire.encode(wire.Tread(tag=3, fid=1, count=-1))
                + wire.encode(wire.Tclunk(tag=4, fid=1)))
            for i in range(len(stream)):
                client_end.send(stream[i:i + 1])
            reader = FrameReader(client_end)
            replies = [reader.next_frame() for _ in range(5)]
            assert [type(r) for r in replies] == [
                wire.Rattach, wire.Rwalk, wire.Ropen, wire.Rread,
                wire.Rclunk]
            assert replies[3].data == "top note\n"
        finally:
            client_end.close()
            server.close()

    def test_pipelined_burst_in_one_read(self):
        """The inverse split: every frame lands in one buffer full."""
        vfs = make_tree()
        server = WireServer(vfs.root, clock=vfs.clock)
        client_end, server_end = channel_pair()
        server.serve(server_end)
        try:
            client_end.send(
                wire.encode(wire.Tattach(tag=0, fid=0))
                + wire.encode(wire.Twalk(tag=1, fid=0, newfid=1,
                                         names=["notes.txt"]))
                + wire.encode(wire.Topen(tag=2, fid=1, mode="r"))
                + wire.encode(wire.Tread(tag=3, fid=1, count=-1)))
            reader = FrameReader(client_end)
            replies = [reader.next_frame() for _ in range(4)]
            assert replies[3].data == "top note\n"
        finally:
            client_end.close()
            server.close()


class TestDisconnectMidRpc:
    def test_client_disconnect_while_rpc_in_worker(self):
        """The channel dies while the RPC is still running: the late
        reply must be swallowed and the connection torn down cleanly."""
        started = threading.Event()
        gate = threading.Event()

        def slow_read() -> str:
            started.set()
            gate.wait(5)
            return "late\n"

        root = SynthDir("/", list_fn=lambda: [
            SynthFile("slow", read_fn=slow_read)])
        metrics = MetricsRegistry("t")
        server = WireServer(root, workers=2, serialize=False,
                            metrics=metrics)
        client_end, server_end = channel_pair()
        handle = server.serve(server_end)
        try:
            client_end.send(wire.encode(wire.Tattach(tag=0, fid=0)))
            reader = FrameReader(client_end)
            assert isinstance(reader.next_frame(), wire.Rattach)
            client_end.send(wire.encode(
                wire.Twalk(tag=1, fid=0, newfid=1, names=["slow"])))
            assert isinstance(reader.next_frame(), wire.Rwalk)
            client_end.send(wire.encode(
                wire.Topen(tag=2, fid=1, mode="r")))
            assert isinstance(reader.next_frame(), wire.Ropen)
            client_end.send(wire.encode(
                wire.Tread(tag=3, fid=1, count=-1)))
            assert started.wait(5)
            client_end.close()     # mid-RPC disconnect
        finally:
            gate.set()
        assert handle.join(timeout=5) is None
        assert not handle.is_alive()
        server.close()
        assert metrics.counter("mux.inflight") == 0


class TestSlowReaderBackpressure:
    def test_write_queue_fills_pauses_then_drains(self):
        """A client that stops reading fills the connection's write
        queue past the high-water mark; the reactor stops reading from
        it (recorded as wire.backpressure.paused), then resumes once
        the client drains the queue below low water.  Every reply must
        still arrive (worker-pool scheduling may reorder tags)."""
        big = "x" * (512 * 1024)
        root = SynthDir("/", list_fn=lambda: [
            SynthFile("big", read_fn=lambda: big)])
        metrics = MetricsRegistry("t")
        server = WireServer(root, metrics=metrics, serialize=False,
                            max_outstanding=256)
        host, port = server.listen()
        channel = dial(host, port)
        try:
            channel.send(wire.encode(wire.Tattach(tag=0, fid=0)))
            reader = FrameReader(channel)
            assert isinstance(reader.next_frame(), wire.Rattach)
            channel.send(wire.encode(
                wire.Twalk(tag=1, fid=0, newfid=1, names=["big"])))
            assert isinstance(reader.next_frame(), wire.Rwalk)
            channel.send(wire.encode(wire.Topen(tag=2, fid=1, mode="r")))
            assert isinstance(reader.next_frame(), wire.Ropen)

            # keep feeding half-megabyte reads without reading replies;
            # the pause fires when input arrives onto a full queue, so
            # the sender must stay active until the reactor pushes back
            sent = []

            def feed() -> None:
                for tag in range(100, 300):
                    channel.send(wire.encode(
                        wire.Tread(tag=tag, fid=1, offset=0, count=-1)))
                    sent.append(tag)
                    if metrics.counter("wire.backpressure.paused"):
                        return

            sender = threading.Thread(target=feed, daemon=True)
            sender.start()
            deadline = time.monotonic() + 10
            while (metrics.counter("wire.backpressure.paused") == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert metrics.counter("wire.backpressure.paused") >= 1
            # now drain: every sent read gets its reply.
            # The sender may still be blocked in send() — backpressure
            # reached the kernel buffers — so drain and join together.
            got = []
            sender_done = False
            while not sender_done or len(got) < len(sent):
                if not sender.is_alive():
                    sender_done = True
                    if len(got) >= len(sent):
                        break
                reply = reader.next_frame()
                assert isinstance(reply, wire.Rread)
                assert reply.data == big
                got.append(reply.tag)
            sender.join(timeout=10)
            assert sorted(got) == sorted(sent)
            deadline = time.monotonic() + 10
            while (metrics.counter("wire.backpressure.resumed") == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert metrics.counter("wire.backpressure.resumed") >= 1
        finally:
            channel.close()
            server.close()
