"""Property tests: every wire message survives encode -> decode.

The codec is the trust boundary of the transport — a frame that
round-trips wrong corrupts a session silently, and a malformed frame
that doesn't raise :class:`~repro.fs.errors.Invalid` lets garbage
masquerade as requests.  Hypothesis drives both directions.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import wire
from repro.fs.errors import (
    Closed,
    FsError,
    Invalid,
    IOFault,
    NotFound,
    TAXONOMY,
)

texts = st.text(max_size=200)
names = st.text(max_size=40)
tags = st.integers(min_value=0, max_value=0xFFFF)
fids = st.integers(min_value=0, max_value=0xFFFFFFFF)
mtimes = st.integers(min_value=0, max_value=2**62)
counts = st.integers(min_value=-1, max_value=2**31 - 1)
offsets = st.integers(min_value=-1, max_value=2**62)
modes = st.sampled_from(["r", "w", "a", "rw"])
bools = st.booleans()

stat_entries = st.builds(wire.StatEntry, name=names, is_dir=bools,
                         mtime=mtimes)

messages = st.one_of(
    st.builds(wire.Tattach, tag=tags, fid=fids, uname=names, aname=names),
    st.builds(wire.Rattach, tag=tags, is_dir=bools, mtime=mtimes),
    st.builds(wire.Twalk, tag=tags, fid=fids, newfid=fids,
              names=st.lists(names, max_size=8)),
    st.builds(wire.Rwalk, tag=tags, found=bools, is_dir=bools, mtime=mtimes),
    st.builds(wire.Topen, tag=tags, fid=fids, mode=modes),
    st.builds(wire.Ropen, tag=tags),
    st.builds(wire.Tread, tag=tags, fid=fids, offset=offsets, count=counts),
    st.builds(wire.Rread, tag=tags, data=texts),
    st.builds(wire.Twrite, tag=tags, fid=fids, data=texts),
    st.builds(wire.Rwrite, tag=tags, count=fids),
    st.builds(wire.Tclunk, tag=tags, fid=fids),
    st.builds(wire.Rclunk, tag=tags),
    st.builds(wire.Tstat, tag=tags, fid=fids),
    st.builds(wire.Rstat, tag=tags, stat=stat_entries,
              children=st.lists(stat_entries, max_size=8)),
    st.builds(wire.Rerror, tag=tags, kind=names, errop=names, path=names,
              message=texts),
    st.builds(wire.Tship, tag=tags, sid=names,
              verb=st.sampled_from(["reset", "append", "state", "drop",
                                    "ping"]),
              seq=offsets, crc=fids, meta=names, data=texts),
    st.builds(wire.Rship, tag=tags, ack=offsets),
)


class TestRoundTrip:
    @given(messages)
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_identity(self, msg):
        frame = wire.encode(msg)
        decoded, consumed = wire.decode(frame)
        assert consumed == len(frame)
        assert decoded == msg

    @given(st.lists(messages, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_concatenated_frames_decode_in_order(self, msgs):
        """A byte stream of frames yields the messages in order."""
        stream = b"".join(wire.encode(m) for m in msgs)
        out, pos = [], 0
        while pos < len(stream):
            msg, pos = wire.decode(stream, pos)
            assert msg is not None
            out.append(msg)
        assert out == msgs

    def test_max_size_payload_round_trips(self):
        """A read reply that exactly fills MAX_MESSAGE survives."""
        header = 7 + 4  # frame header + data length prefix
        data = "x" * (wire.MAX_MESSAGE - header)
        msg = wire.Rread(tag=1, data=data)
        frame = wire.encode(msg)
        assert len(frame) == wire.MAX_MESSAGE
        decoded, _ = wire.decode(frame)
        assert decoded.data == data

    def test_oversize_message_refused_at_encode(self):
        with pytest.raises(Invalid):
            wire.encode(wire.Rread(tag=1, data="x" * wire.MAX_MESSAGE))

    @given(messages)
    @settings(max_examples=100, deadline=None)
    def test_op_names_cover_every_type(self, msg):
        assert msg.op in ("attach", "walk", "open", "read", "write",
                          "clunk", "stat", "error", "ship")


class TestMalformedFrames:
    @given(messages, st.data())
    @settings(max_examples=150, deadline=None)
    def test_truncated_frame_is_partial_not_garbage(self, msg, data):
        """Cutting a frame short never yields a message: the decoder
        asks for more bytes (returns None) — it must not raise for a
        prefix that could still complete."""
        frame = wire.encode(msg)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        decoded, pos = wire.decode(frame[:cut])
        assert decoded is None
        assert pos == 0

    @given(messages)
    @settings(max_examples=100, deadline=None)
    def test_truncated_payload_with_lying_size_raises(self, msg):
        """A frame whose size field claims less than its payload needs
        raises Invalid instead of mis-slicing."""
        frame = wire.encode(msg)
        if len(frame) == 7:  # header-only messages have nothing to lie about
            return
        lying = struct.pack("<I", 7) + frame[4:]
        with pytest.raises(Invalid):
            # size says "no payload" but the type expects fields, so
            # either the cursor runs out or trailing bytes are detected
            wire.decode(lying)

    def test_unknown_message_type_raises(self):
        frame = struct.pack("<IBH", 7, 99, 0)  # type 99 is unassigned
        with pytest.raises(Invalid):
            wire.decode(frame)

    def test_undersized_size_field_raises(self):
        with pytest.raises(Invalid):
            wire.decode(struct.pack("<IBH", 3, wire.Rclunk.type, 0))

    def test_oversized_size_field_raises(self):
        frame = struct.pack("<IBH", wire.MAX_MESSAGE + 1, wire.Rread.type, 0)
        with pytest.raises(Invalid):
            wire.decode(frame)

    def test_trailing_garbage_in_frame_raises(self):
        clean = wire.encode(wire.Rclunk(tag=3))
        padded = struct.pack("<I", len(clean) + 2) + clean[4:] + b"xx"
        with pytest.raises(Invalid):
            wire.decode(padded)

    @given(st.binary(min_size=7, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash_the_decoder(self, blob):
        """Arbitrary bytes either decode, await more input, or raise
        Invalid — never any other exception."""
        try:
            wire.decode(blob)
        except Invalid:
            pass


class TestErrorCarriage:
    @given(st.sampled_from(TAXONOMY), names, texts)
    @settings(max_examples=100, deadline=None)
    def test_taxonomy_errors_survive_the_wire(self, cls, path, message):
        exc = cls(message or None, path=path or None, op="open")
        reply = wire.Rerror.from_exc(5, exc)
        frame = wire.encode(reply)
        decoded, _ = wire.decode(frame)
        rebuilt = decoded.to_exc()
        assert type(rebuilt) is cls
        assert rebuilt.kind == exc.kind
        assert rebuilt.path == exc.path
        assert rebuilt.op == exc.op
        assert str(rebuilt) == str(exc)

    def test_unknown_kind_degrades_to_base_fserror(self):
        reply = wire.Rerror(tag=1, kind="martian", errop="read",
                            path="/x", message="weird")
        exc = reply.to_exc()
        assert type(exc) is FsError
        assert str(exc) == "weird"

    def test_plain_exception_becomes_io_kind(self):
        reply = wire.Rerror.from_exc(2, ValueError("boom"))
        assert reply.kind == "io"
        assert "boom" in reply.message

    def test_specific_kinds_map_back(self):
        for cls, kind in ((NotFound, "notfound"), (Closed, "closed"),
                          (IOFault, "iofault")):
            reply = wire.Rerror.from_exc(1, cls(path="/p", op="read"))
            assert reply.kind == kind
            assert type(reply.to_exc()) is cls
