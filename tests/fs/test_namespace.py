"""Unit tests for bind/mount namespaces."""

import pytest

from repro.fs import VFS, BindFlag, FsError, Namespace, SynthDir, SynthFile
from repro.fs.vfs import File


@pytest.fixture
def ns():
    fs = VFS()
    fs.mkdir("/bin")
    fs.create("/bin/grep", "#builtin grep")
    fs.mkdir("/usr/rob/bin/rc", parents=True)
    fs.create("/usr/rob/bin/rc/news", "#script news")
    fs.mkdir("/usr/rob/tmp", parents=True)
    fs.mkdir("/tmp")
    fs.mkdir("/mnt")
    return Namespace(fs)


class TestResolution:
    def test_plain_paths_pass_through(self, ns):
        assert ns.read("/bin/grep") == "#builtin grep"

    def test_missing_path(self, ns):
        assert ns.resolve("/no/where") is None
        with pytest.raises(FsError):
            ns.walk("/no/where")

    def test_exists_isdir(self, ns):
        assert ns.exists("/bin")
        assert ns.isdir("/bin")
        assert not ns.isdir("/bin/grep")


class TestBind:
    def test_replace_bind(self, ns):
        ns.bind("/usr/rob/tmp", "/tmp")
        ns.write("/tmp/scratch", "x")
        assert ns.read("/usr/rob/tmp/scratch") == "x"

    def test_bind_after_union(self, ns):
        # profile line: bind -a $home/bin/rc /bin
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        assert ns.read("/bin/grep") == "#builtin grep"
        assert ns.read("/bin/news") == "#script news"
        assert ns.listdir("/bin") == ["grep", "news"]

    def test_bind_before_shadows(self, ns):
        ns.vfs.create("/usr/rob/bin/rc/grep", "#my grep")
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.BEFORE)
        assert ns.read("/bin/grep") == "#my grep"

    def test_bind_after_does_not_shadow(self, ns):
        ns.vfs.create("/usr/rob/bin/rc/grep", "#my grep")
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        assert ns.read("/bin/grep") == "#builtin grep"

    def test_union_create_goes_to_first_member(self, ns):
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.BEFORE)
        ns.write("/bin/newtool", "t")
        assert ns.vfs.read("/usr/rob/bin/rc/newtool") == "t"
        assert not ns.vfs.exists("/bin/newtool")

    def test_bind_missing_src_fails(self, ns):
        with pytest.raises(FsError):
            ns.bind("/nope", "/tmp")

    def test_bind_missing_dst_fails(self, ns):
        with pytest.raises(FsError):
            ns.bind("/tmp", "/nope")

    def test_bind_file_over_dir_fails(self, ns):
        with pytest.raises(FsError, match="differ in kind"):
            ns.bind("/bin/grep", "/tmp")

    def test_bind_file_over_file(self, ns):
        ns.vfs.create("/usr/rob/mygrep", "#mine")
        ns.bind("/usr/rob/mygrep", "/bin/grep")
        assert ns.read("/bin/grep") == "#mine"

    def test_unmount_restores(self, ns):
        ns.bind("/usr/rob/bin/rc", "/bin")
        assert not ns.exists("/bin/grep")
        ns.unmount("/bin")
        assert ns.exists("/bin/grep")

    def test_unmount_unmounted_fails(self, ns):
        with pytest.raises(FsError, match="not mounted"):
            ns.unmount("/bin")

    def test_remove_mount_point_fails(self, ns):
        ns.bind("/usr/rob/tmp", "/tmp")
        with pytest.raises(FsError, match="mount point"):
            ns.remove("/tmp")

    def test_nested_mounts(self, ns):
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        ns.vfs.mkdir("/usr/rob/bin/rc/sub")
        ns.vfs.create("/usr/rob/bin/rc/sub/inner", "deep")
        assert ns.read("/bin/sub/inner") == "deep"

    def test_mount_table_inspection(self, ns):
        ns.bind("/usr/rob/tmp", "/tmp")
        table = ns.mount_table()
        assert "/tmp" in table


class TestFork:
    def test_fork_copies_mounts(self, ns):
        ns.bind("/usr/rob/tmp", "/tmp")
        child = ns.fork()
        assert child.exists("/tmp")
        child.write("/tmp/x", "1")
        assert ns.read("/tmp/x") == "1"  # shared VFS

    def test_fork_mounts_are_independent(self, ns):
        child = ns.fork()
        child.bind("/usr/rob/bin/rc", "/bin")
        assert not child.exists("/bin/grep")
        assert ns.exists("/bin/grep")  # parent untouched

    def test_fork_does_not_share_mount_stacks(self, ns):
        # A union bind in the child must grow the *child's* stack list,
        # never the parent's — stacks are copied, not aliased.
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        child = ns.fork()
        ns.vfs.mkdir("/usr/rob/extra")
        ns.vfs.create("/usr/rob/extra/late", "#late")
        child.bind("/usr/rob/extra", "/bin", BindFlag.AFTER)
        assert child.exists("/bin/late")
        assert not ns.exists("/bin/late")  # parent's union unchanged
        assert ns.listdir("/bin") == ["grep", "news"]

    def test_fork_unmount_leaves_parent_mounted(self, ns):
        ns.bind("/usr/rob/tmp", "/tmp")
        child = ns.fork()
        child.unmount("/tmp")
        assert "/tmp" in ns.mount_table()  # parent still bound
        ns.write("/tmp/x", "1")
        assert ns.read("/usr/rob/tmp/x") == "1"


class TestSyntheticMounts:
    def test_mount_synth_dir(self, ns):
        body = SynthFile("body", read_fn=lambda: "window text\n")
        root = SynthDir("help", list_fn=lambda: [body])
        ns.mount(root, "/mnt")
        assert ns.read("/mnt/body") == "window text\n"

    def test_synth_write_path(self, ns):
        got = []
        ctl = SynthFile("ctl", write_fn=got.append)
        root = SynthDir("help", list_fn=lambda: [ctl])
        ns.mount(root, "/mnt")
        with ns.open("/mnt/ctl", "w") as f:
            f.write("delete 0 5\n")
        assert got == ["delete 0 5\n"]

    def test_glob_through_mount(self, ns):
        files = [File("1"), File("2"), File("index")]
        root = SynthDir("help", list_fn=lambda: files)
        ns.mount(root, "/mnt")
        assert ns.glob("/mnt/[0-9]") == ["/mnt/1", "/mnt/2"]


class TestNamespaceIO:
    def test_mkdir_parents(self, ns):
        ns.mkdir("/a/b/c", parents=True)
        assert ns.isdir("/a/b/c")

    def test_mkdir_existing_fails(self, ns):
        with pytest.raises(FsError):
            ns.mkdir("/bin")

    def test_remove_from_union_first_member(self, ns):
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        ns.remove("/bin/news")
        assert not ns.vfs.exists("/usr/rob/bin/rc/news")

    def test_glob_sees_union(self, ns):
        ns.bind("/usr/rob/bin/rc", "/bin", BindFlag.AFTER)
        assert ns.glob("/bin/*") == ["/bin/grep", "/bin/news"]
