"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.fs import VFS, Namespace
from repro.fs.errors import Crashed, IOFault, Permission
from repro.fs.faults import Fault, FaultPlan, wrap
from repro.metrics.counter import counter, reset_counters


def make_tree():
    vfs = VFS()
    ns = Namespace(vfs)
    ns.mkdir("/data/sub", parents=True)
    ns.write("/data/a", "alpha\n")
    ns.write("/data/sub/b", "bravo\n")
    return vfs, ns


def faulted_ns(*faults):
    vfs, ns = make_tree()
    plan = FaultPlan(*faults)
    faulty = wrap(ns.walk("/data"), plan, base="/data")
    ns.mount(faulty, "/data")
    return ns, plan


class TestFaultRules:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown faultable op"):
            Fault(op="truncate")

    def test_nth_open_fails(self):
        ns, plan = faulted_ns(Fault(op="open", path="/data/a", at=2))
        ns.open("/data/a").close()  # first open fine
        with pytest.raises(IOFault) as err:
            ns.open("/data/a")
        assert err.value.path == "/data/a"
        assert err.value.op == "open"
        ns.open("/data/a").close()  # third open fine again
        assert plan.fired == [1]

    def test_at_zero_fails_every_time(self):
        ns, plan = faulted_ns(Fault(op="open", path="/data/a", at=0))
        for _ in range(3):
            with pytest.raises(IOFault):
                ns.open("/data/a")
        assert plan.fired == [3]

    def test_path_pattern_scopes_the_fault(self):
        ns, _ = faulted_ns(Fault(op="open", path="/data/sub/*", at=1))
        assert ns.read("/data/a") == "alpha\n"  # unmatched path untouched
        with pytest.raises(IOFault):
            ns.open("/data/sub/b")

    def test_short_read_truncates_instead_of_raising(self):
        ns, plan = faulted_ns(Fault(op="read", path="/data/a", at=1, short=3))
        with ns.open("/data/a") as f:
            assert f.read() == "alp"
        assert plan.injected == 1

    def test_write_fault_carries_kind_override(self):
        ns, _ = faulted_ns(
            Fault(op="write", path="/data/a", at=1, kind=Permission,
                  message="'/data/a' write refused"))
        handle = ns.open("/data/a", "w")
        with pytest.raises(Permission, match="write refused"):
            handle.write("x")

    def test_close_fault_still_closes_inner_handle(self):
        ns, _ = faulted_ns(Fault(op="close", path="/data/a", at=1))
        handle = ns.open("/data/a", "w")
        handle.write("gamma\n")
        with pytest.raises(IOFault):
            handle.close()
        assert handle.closed  # the underlying handle did close...
        assert ns.read("/data/a") == "gamma\n"  # ...and the data landed

    def test_close_fault_fires_once_per_session(self):
        ns, plan = faulted_ns(Fault(op="close", path="/data/a", at=0))
        handle = ns.open("/data/a")
        with pytest.raises(IOFault):
            handle.close()
        handle.close()  # second close is a no-op, not a second fault
        assert plan.fired == [1]

    def test_injection_counter_tracks_plan(self):
        reset_counters("fs.fault.")
        ns, plan = faulted_ns(Fault(op="open", path="/data/*", at=0))
        for _ in range(2):
            with pytest.raises(IOFault):
                ns.open("/data/a")
        assert counter("fs.fault.injected") == 2
        assert plan.injected == 2

    def test_reset_replays_the_schedule(self):
        ns, plan = faulted_ns(Fault(op="open", path="/data/a", at=1))
        with pytest.raises(IOFault):
            ns.open("/data/a")
        ns.open("/data/a").close()
        plan.reset()
        with pytest.raises(IOFault):
            ns.open("/data/a")
        assert plan.fired == [1]


class TestCrashFaults:
    def test_crashing_write_tears_and_raises(self):
        ns, plan = faulted_ns(Fault(op="write", path="/data/a", crash=True))
        handle = ns.open("/data/a", "w")
        with pytest.raises(Crashed, match="crashed"):
            handle.write("0123456789")
        handle.close()
        ns.unmount("/data")
        assert ns.read("/data/a") == "01234"  # half landed, torn

    def test_short_controls_the_torn_length(self):
        ns, _ = faulted_ns(
            Fault(op="write", path="/data/a", crash=True, short=3))
        handle = ns.open("/data/a", "w")
        with pytest.raises(Crashed):
            handle.write("0123456789")
        ns.unmount("/data")
        assert ns.read("/data/a") == "012"

    def test_dead_plan_refuses_every_later_op(self):
        ns, plan = faulted_ns(Fault(op="write", path="/data/a", crash=True))
        handle = ns.open("/data/a", "w")
        with pytest.raises(Crashed):
            handle.write("x")
        assert plan.dead
        with pytest.raises(Crashed):
            ns.open("/data/sub/b")  # any path, any op: the process died
        with pytest.raises(Crashed):
            handle.write("again")

    def test_close_of_a_dead_process_is_a_noop(self):
        # raising from close would mask the original crash when the
        # handle is closed by a with-block's __exit__
        ns, _ = faulted_ns(Fault(op="write", path="/data/a", crash=True))
        with pytest.raises(Crashed) as err:
            with ns.open("/data/a", "w") as handle:
                handle.write("x")
        assert err.value.op == "write"  # the crash, not a close error

    def test_crash_on_read_raises_without_data(self):
        ns, _ = faulted_ns(Fault(op="read", path="/data/a", crash=True))
        handle = ns.open("/data/a")
        with pytest.raises(Crashed):
            handle.read()

    def test_reset_revives_the_process(self):
        ns, plan = faulted_ns(Fault(op="write", path="/data/a", crash=True))
        with pytest.raises(Crashed):
            ns.open("/data/a", "w").write("x")
        plan.reset()
        handle = ns.open("/data/a", "w")
        with pytest.raises(Crashed):  # the schedule replays: crash at 1
            handle.write("x")

    def test_crash_counts_as_injection(self):
        reset_counters("fs.fault.")
        ns, plan = faulted_ns(Fault(op="write", path="/data/a", crash=True))
        with pytest.raises(Crashed):
            ns.open("/data/a", "w").write("x")
        assert plan.injected == 1
        assert counter("fs.fault.injected") == 1
        # post-crash refusals are the dead process, not new injections
        with pytest.raises(Crashed):
            ns.open("/data/a")
        assert counter("fs.fault.injected") == 1


class TestWrappedTree:
    def test_paths_reported_under_base(self):
        ns, _ = faulted_ns(Fault(op="open", path="*", at=0))
        with pytest.raises(IOFault) as err:
            ns.open("/data/sub/b")
        assert err.value.path == "/data/sub/b"

    def test_listing_and_stat_pass_through(self):
        ns, _ = faulted_ns()
        assert sorted(ns.listdir("/data")) == ["a", "sub"]
        assert ns.isdir("/data/sub")
        assert not ns.isdir("/data/a")

    def test_underlying_tree_untouched_after_unmount(self):
        ns, _ = faulted_ns(Fault(op="open", path="*", at=0))
        with pytest.raises(IOFault):
            ns.open("/data/a")
        ns.unmount("/data")
        assert ns.read("/data/a") == "alpha\n"

    def test_wrap_synthetic_server_tree(self):
        from repro.fs import SynthDir, SynthFile
        lines = []
        root = SynthDir("srv", list_fn=lambda: [
            SynthFile("ctl", write_fn=lines.append),
            SynthFile("body", read_fn=lambda: "text\n"),
        ])
        vfs = VFS()
        ns = Namespace(vfs)
        ns.mkdir("/mnt/srv", parents=True)
        plan = FaultPlan(Fault(op="write", path="/mnt/srv/ctl", at=2))
        ns.mount(wrap(root, plan, base="/mnt/srv"), "/mnt/srv")
        assert ns.read("/mnt/srv/body") == "text\n"
        handle = ns.open("/mnt/srv/ctl", "w")
        handle.write("first\n")
        with pytest.raises(IOFault):
            handle.write("second\n")
        handle.close()
        assert lines == ["first\n"]
