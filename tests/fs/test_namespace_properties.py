"""Property tests for namespace invariants."""

from hypothesis import given, settings, strategies as st

from repro.fs import VFS, BindFlag, Namespace

names = st.sampled_from(["a", "b", "c", "d"])
paths = st.lists(names, min_size=1, max_size=3).map(lambda p: "/" + "/".join(p))


def fresh_ns():
    fs = VFS()
    for a in "abcd":
        for b in "abcd":
            fs.mkdir(f"/{a}/{b}", parents=True)
            fs.create(f"/{a}/{b}/file_{a}{b}", f"{a}{b}\n")
    return Namespace(fs)


class TestBindProperties:
    @given(st.lists(st.tuples(names, names,
                              st.sampled_from(list(BindFlag))),
                    max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_resolution_is_total(self, binds):
        """After any bind sequence, every path either resolves or not —
        no exceptions, and listing visible dirs always works."""
        ns = fresh_ns()
        for src, dst, flag in binds:
            ns.bind(f"/{src}", f"/{dst}", flag)
        for a in "abcd":
            if ns.isdir(f"/{a}"):
                for entry in ns.listdir(f"/{a}"):
                    assert ns.exists(f"/{a}/{entry}")

    @given(names, names, st.sampled_from(list(BindFlag)))
    @settings(max_examples=30, deadline=None)
    def test_unmount_restores(self, src, dst, flag):
        ns = fresh_ns()
        before = {p: ns.exists(p)
                  for a in "abcd" for b in "abcd"
                  for p in (f"/{a}/{b}/file_{a}{b}",)}
        ns.bind(f"/{src}", f"/{dst}", flag)
        ns.unmount(f"/{dst}")
        after = {p: ns.exists(p) for p in before}
        assert before == after

    @given(names, names)
    @settings(max_examples=30, deadline=None)
    def test_after_bind_never_shadows(self, src, dst):
        """bind -a adds names but never changes what existing names mean."""
        ns = fresh_ns()
        dst_entries = {name: ns.read(f"/{dst}/{name}")
                       for name in ns.listdir(f"/{dst}")
                       if not ns.isdir(f"/{dst}/{name}")}
        ns.bind(f"/{src}", f"/{dst}", BindFlag.AFTER)
        for name, content in dst_entries.items():
            assert ns.read(f"/{dst}/{name}") == content

    @given(names, names)
    @settings(max_examples=30, deadline=None)
    def test_before_bind_prefers_new(self, src, dst):
        ns = fresh_ns()
        ns.bind(f"/{src}", f"/{dst}", BindFlag.BEFORE)
        for name in ns.listdir(f"/{src}"):
            if not ns.isdir(f"/{src}/{name}"):
                assert ns.read(f"/{dst}/{name}") == ns.read(f"/{src}/{name}")

    @given(st.lists(st.tuples(names, names), max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_fork_isolation(self, binds):
        """A child's binds never leak into the parent."""
        ns = fresh_ns()
        snapshot = ns.mount_table()
        child = ns.fork()
        for src, dst in binds:
            child.bind(f"/{src}", f"/{dst}", BindFlag.BEFORE)
        assert ns.mount_table().keys() == snapshot.keys()

    @given(st.text(alphabet="abcd/.", max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_resolve_never_raises(self, path):
        ns = fresh_ns()
        ns.resolve(path)  # any string is a legal question
