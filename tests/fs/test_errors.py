"""Unit tests for the structured error taxonomy."""

import pytest

from repro.fs import VFS, Namespace
from repro.fs.errors import (
    Busy,
    Closed,
    Exists,
    FsError,
    Invalid,
    IOFault,
    IsADirectory,
    NotADirectory,
    NotFound,
    Permission,
    TAXONOMY,
    diagnostic,
)
from repro.metrics.counter import counter, reset_counters


class TestTaxonomy:
    def test_every_kind_is_an_fserror(self):
        for cls in TAXONOMY:
            assert issubclass(cls, FsError)

    def test_kinds_are_distinct(self):
        kinds = [cls.kind for cls in TAXONOMY]
        assert len(kinds) == len(set(kinds))

    def test_default_message_from_path(self):
        exc = NotFound(path="/usr/rob/doc", op="open")
        assert str(exc) == "'/usr/rob/doc' does not exist"
        assert exc.path == "/usr/rob/doc"
        assert exc.op == "open"
        assert exc.kind == "notfound"

    def test_explicit_message_wins(self):
        exc = Busy("'/tmp' not empty", path="/tmp", op="remove")
        assert str(exc) == "'/tmp' not empty"
        assert exc.reason == "not empty"

    def test_diagnostic_shape(self):
        exc = NotFound(path="/x", op="walk")
        assert exc.diagnostic() == "walk '/x': does not exist [notfound]"

    def test_diagnostic_without_path(self):
        exc = IOFault("disk on fire")
        assert exc.diagnostic() == "io: disk on fire [iofault]"

    def test_module_diagnostic_passes_plain_exceptions_through(self):
        assert diagnostic(ValueError("nope")) == "nope"
        exc = Permission(path="/etc/shadow", op="open")
        assert "[perm]" in diagnostic(exc)

    def test_errors_bump_kind_counters(self):
        reset_counters("fs.error.")
        NotFound(path="/a", op="open")
        NotFound(path="/b", op="open")
        Closed(path="/c", op="read")
        assert counter("fs.error.notfound") == 2
        assert counter("fs.error.closed") == 1


class TestRaiseSitesCarryStructure:
    """Every layer raises taxonomy errors with path and op attached."""

    def setup_method(self):
        self.vfs = VFS()
        self.ns = Namespace(self.vfs)

    def test_vfs_open_missing(self):
        with pytest.raises(NotFound) as err:
            self.vfs.open("/nope", "r")
        assert err.value.path == "/nope"
        assert err.value.op == "open"

    def test_vfs_mkdir_over_file(self):
        self.vfs.create("/f", "x")
        with pytest.raises(Exists) as err:
            self.vfs.mkdir("/f")
        assert err.value.path == "/f"

    def test_vfs_open_directory(self):
        self.vfs.mkdir("/d")
        with pytest.raises(IsADirectory) as err:
            self.vfs.open("/d", "r")
        assert err.value.op == "open"

    def test_vfs_remove_nonempty(self):
        self.vfs.mkdir("/d")
        self.vfs.create("/d/f", "x")
        with pytest.raises(Busy) as err:
            self.vfs.remove("/d")
        assert err.value.path == "/d"
        assert err.value.op == "remove"

    def test_vfs_bad_mode(self):
        self.vfs.create("/f", "x")
        with pytest.raises(Invalid):
            self.vfs.open("/f", "q")

    def test_vfs_closed_handle_names_file(self):
        self.vfs.create("/f", "x")
        handle = self.vfs.open("/f", "r")
        handle.close()
        with pytest.raises(Closed) as err:
            handle.read()
        assert "f" in str(err.value)
        assert err.value.op == "read"

    def test_namespace_walk_missing(self):
        with pytest.raises(NotFound) as err:
            self.ns.walk("/no/such/dir")
        assert err.value.path == "/no/such/dir"
        assert err.value.op == "walk"

    def test_namespace_listdir_of_file(self):
        self.ns.write("/f", "x")
        with pytest.raises(NotADirectory) as err:
            self.ns.listdir("/f")
        assert err.value.op == "listdir"

    def test_namespace_unmount_unmounted(self):
        self.ns.mkdir("/mnt")
        with pytest.raises(NotFound) as err:
            self.ns.unmount("/mnt")
        assert "not mounted" in str(err.value)

    def test_shell_sees_structured_diagnostic(self):
        from repro.shell import Interp
        from repro.shell.commands import DEFAULT_COMMANDS
        self.ns.mkdir("/tmp")
        interp = Interp(self.ns, cwd="/tmp", commands=dict(DEFAULT_COMMANDS))
        result = interp.run("cat /absent")
        assert result.status != 0
        assert "'/absent'" in result.stderr
        assert "[notfound]" in result.stderr


def test_no_bare_fserror_raises_left_in_fs_or_helpfs():
    """Acceptance: string-only `raise FsError(...)` sites are gone."""
    import pathlib
    import re
    import repro.fs
    import repro.helpfs
    pattern = re.compile(r"raise FsError\(")
    offenders = []
    for pkg in (repro.fs, repro.helpfs):
        for path in pathlib.Path(pkg.__path__[0]).glob("*.py"):
            if pattern.search(path.read_text()):
                offenders.append(str(path))
    assert offenders == []
