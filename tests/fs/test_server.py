"""Unit tests for synthetic files and directories."""

import pytest

from repro.fs import FsError, SynthDir, SynthFile, SynthSession
from repro.fs.vfs import File


class TestSynthFile:
    def test_read_snapshot_is_stable(self):
        state = {"text": "first"}
        f = SynthFile("body", read_fn=lambda: state["text"])
        session = f.open("r")
        assert session.read(2) == "fi"
        state["text"] = "second"
        assert session.read() == "rst"  # snapshot taken at first read

    def test_new_open_sees_new_state(self):
        state = {"text": "first"}
        f = SynthFile("body", read_fn=lambda: state["text"])
        assert f.open("r").read() == "first"
        state["text"] = "second"
        assert f.open("r").read() == "second"

    def test_data_property_serves_live(self):
        state = {"text": "x"}
        f = SynthFile("body", read_fn=lambda: state["text"])
        assert f.data == "x"
        state["text"] = "y"
        assert f.data == "y"

    def test_data_not_assignable(self):
        f = SynthFile("body", read_fn=lambda: "")
        with pytest.raises(FsError):
            f.data = "nope"

    def test_write_line_buffered(self):
        lines = []
        f = SynthFile("ctl", write_fn=lines.append)
        session = f.open("w")
        session.write("insert 3")
        assert lines == []  # incomplete line buffered
        session.write(" x\nsel")
        assert lines == ["insert 3 x\n"]
        session.close()
        assert lines == ["insert 3 x\n", "sel"]  # flushed on close

    def test_write_many_lines_at_once(self):
        lines = []
        f = SynthFile("ctl", write_fn=lines.append)
        with f.open("w") as session:
            session.write("a\nb\nc\n")
        assert lines == ["a\n", "b\n", "c\n"]

    def test_read_only_file_rejects_write(self):
        f = SynthFile("body", read_fn=lambda: "t")
        with pytest.raises(FsError, match="not writable"):
            f.open("w")

    def test_write_only_file_rejects_read(self):
        f = SynthFile("ctl", write_fn=lambda s: None)
        with pytest.raises(FsError, match="not readable"):
            f.open("r")

    def test_bad_mode(self):
        f = SynthFile("body", read_fn=lambda: "")
        with pytest.raises(FsError, match="bad open mode"):
            f.open("q")

    def test_open_fn_per_open_state(self):
        counter = {"n": 0}

        def open_fn(mode):
            counter["n"] += 1
            return SynthSession(mode, read_fn=lambda: str(counter["n"]))

        f = SynthFile("new", open_fn=open_fn)
        assert f.open("r").read() == "1"
        assert f.open("r").read() == "2"

    def test_session_seek(self):
        f = SynthFile("body", read_fn=lambda: "abcdef")
        s = f.open("r")
        s.seek(3)
        assert s.read() == "def"

    def test_closed_session_fails(self):
        f = SynthFile("body", read_fn=lambda: "x")
        s = f.open("r")
        s.close()
        with pytest.raises(FsError):
            s.read()

    def test_readlines(self):
        f = SynthFile("body", read_fn=lambda: "a\nb\n")
        assert f.open("r").readlines() == ["a\n", "b\n"]


class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        lines = []
        f = SynthFile("ctl", write_fn=lines.append)
        session = f.open("w")
        session.write("tail")
        session.close()
        session.close()
        assert lines == ["tail"]  # flushed exactly once

    def test_close_survives_failing_flush(self):
        def sink(s):
            raise RuntimeError("consumer gone")
        session = SynthFile("ctl", write_fn=sink).open("w")
        session._pending = "tail"  # bypass write so only close flushes
        with pytest.raises(RuntimeError):
            session.close()
        assert session.closed  # marked closed before the flush ran
        session.close()  # and a retry neither raises nor replays the tail

    def test_dropped_session_flushes_tail_on_gc(self):
        lines = []
        f = SynthFile("ctl", write_fn=lines.append)
        session = f.open("w")
        session.write("unterminated final line")
        del session  # dropped without close(): __del__ must flush
        assert lines == ["unterminated final line"]

    def test_closed_error_names_the_file(self):
        f = SynthFile("body", read_fn=lambda: "x")
        session = f.open("r")
        session.close()
        with pytest.raises(FsError, match="'body'.*closed file"):
            session.read()

    def test_permission_errors_name_the_file(self):
        session = SynthFile("ctl", write_fn=lambda s: None).open("w")
        with pytest.raises(FsError, match="'ctl' not open for reading"):
            session.read()
        session = SynthFile("body", read_fn=lambda: "x").open("r")
        with pytest.raises(FsError, match="'body' not open for writing"):
            session.write("x")

    def test_open_fn_session_inherits_file_name(self):
        f = SynthFile("new", open_fn=lambda mode: SynthSession(
            mode, read_fn=lambda: "7"))
        assert f.open("r").name == "new"

    def test_context_manager_flushes(self):
        lines = []
        with SynthFile("ctl", write_fn=lines.append).open("w") as session:
            session.write("a\nb")
        assert lines == ["a\n", "b"]


class TestSynthDir:
    def test_dynamic_listing(self):
        nodes = [File("1"), File("2")]
        d = SynthDir("help", list_fn=lambda: list(nodes))
        assert [e.name for e in d.entries()] == ["1", "2"]
        nodes.append(File("3"))
        assert [e.name for e in d.entries()] == ["1", "2", "3"]

    def test_lookup_via_list(self):
        nodes = [File("index")]
        d = SynthDir("help", list_fn=lambda: nodes)
        assert d.lookup("index") is nodes[0]
        assert d.lookup("absent") is None

    def test_lookup_fn_override(self):
        made = File("7")
        d = SynthDir("help", lookup_fn=lambda name: made if name == "7" else None)
        assert d.lookup("7") is made
        assert d.lookup("8") is None

    def test_static_children_served_after_dynamic(self):
        d = SynthDir("help", list_fn=lambda: [File("a")])
        d.attach(File("z"))
        assert [e.name for e in d.entries()] == ["a", "z"]
        assert d.lookup("z").name == "z"

    def test_dynamic_shadows_static(self):
        dyn = File("index")
        d = SynthDir("help", list_fn=lambda: [dyn])
        d.attach(File("index"))
        assert d.lookup("index") is dyn
        assert len(d.entries()) == 1
