"""Uniformity tests: everything is text, everything is a file.

"the few common rules about text and file names allow a variety of
applications to interact through a single user interface" — these
tests push the uniformity to its corners: windows on windows, renames
through the tag, help editing itself.
"""

import pytest

from repro import build_system
from repro.core.window import Subwindow


@pytest.fixture
def system():
    return build_system(width=140, height=50)


class TestTagEditing:
    def test_rename_by_editing_tag(self, system):
        """Edit the name in the tag; Put! writes to the new name."""
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        name_len = len("/usr/rob/lib/profile")
        h.select(w, 0, name_len, Subwindow.TAG)
        w.type_text(Subwindow.TAG, "/usr/rob/lib/profile2")
        assert w.name() == "/usr/rob/lib/profile2"
        w.mark_dirty()
        h.execute_text(w, "Put!", Subwindow.TAG)
        assert system.ns.exists("/usr/rob/lib/profile2")
        assert system.ns.read("/usr/rob/lib/profile2") == \
            system.ns.read("/usr/rob/lib/profile")

    def test_rename_changes_context(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        h.select(w, 0, len("/usr/rob/lib/profile"), Subwindow.TAG)
        w.type_text(Subwindow.TAG, "/tmp/elsewhere")
        assert w.directory() == "/tmp"

    def test_get_after_rename_loads_new_file(self, system):
        h = system.help
        system.ns.write("/tmp/other", "other contents\n")
        w = h.open_path("/usr/rob/lib/profile")
        h.select(w, 0, len("/usr/rob/lib/profile"), Subwindow.TAG)
        w.type_text(Subwindow.TAG, "/tmp/other")
        h.execute_text(w, "Get!", Subwindow.TAG)
        assert w.body.string() == "other contents\n"


class TestWindowsOnWindows:
    def test_open_a_window_body_as_a_file(self, system):
        """A window showing another window's body — the interface is
        uniform enough that this just works."""
        h = system.help
        target = h.new_window("/tmp/inner", "nested text\n")
        meta = h.open_path(f"/mnt/help/{target.id}/body")
        assert meta is not None
        assert meta.body.string() == "nested text\n"

    def test_open_the_index(self, system):
        h = system.help
        w = h.open_path("/mnt/help/index")
        assert w is not None
        assert "/help/edit/stf" in w.body.string()

    def test_editing_ctl_through_a_window(self, system):
        """Type a ctl message into a window on another window's ctl,
        then Put! it — help scripting help through help."""
        h = system.help
        target = h.new_window("/tmp/victim", "abcdef")
        ctl_w = h.new_window(f"/mnt/help/{target.id}/ctl")
        ctl_w.replace_body("delete 0 3\n", dirty=True)
        h.execute_text(ctl_w, "Put!", Subwindow.TAG)
        assert target.body.string() == "def"

    def test_tool_scripts_are_editable_files(self, system):
        """The mail tool's stf is just a file: edit it, and the new
        word resolves through the same directory rules."""
        h = system.help
        system.ns.write("/help/mail/archive", "echo archived $1\n")
        stf = h.window_by_name("/help/mail/stf")
        stf.append("archive\n")
        h.execute_text(stf, "archive")
        errors = h.window_by_name("Errors")
        assert "archived" in errors.body.string()


class TestHelpOnItsOwnSources:
    def test_browse_the_reconstruction(self, system):
        """The demo's punchline: help is debugging help.  The corpus
        compiles (simulated), browses, and its mkfile builds."""
        shell = system.shell("/usr/rob/src/help")
        assert shell.run("mk").status == 0
        assert shell.run(
            "cpp help.c | help-rcc -imouseslave -n7 | sed 1q").status == 0

    def test_open_every_corpus_file(self, system):
        h = system.help
        for name in system.ns.listdir("/usr/rob/src/help"):
            if name in ("help", "mkfile") or name.endswith(".v"):
                continue
            w = h.open_path(f"/usr/rob/src/help/{name}")
            assert w is not None, name
        # all open simultaneously; layout still coherent
        for column in h.screen.columns:
            bottom = None
            for w in column.visible():
                rect = column.win_rect(w)
                assert rect.height >= 1
                if bottom is not None:
                    assert rect.y0 == bottom
                bottom = rect.y1

    def test_errors_window_is_ordinary(self, system):
        """Even the Errors window obeys all the rules: text in it can
        be selected, executed, opened."""
        h = system.help
        h.post_error("see /usr/rob/src/help/errs.c:34 for the call\n")
        errors = h.window_by_name("Errors")
        pos = errors.body.string().index("errs.c:34") + 2
        h.point_at(errors, pos)
        h.exec_builtin("Open", errors)
        w = h.window_by_name("/usr/rob/src/help/errs.c")
        assert w.body.line_of(w.org) == 34
