"""The paper's example session, end to end, by mouse alone.

"In this example I will go through the process of fixing a bug
reported to me in a mail message sent by a user. ... Through this
entire demo I haven't yet touched the keyboard."

Every step below is the figure-by-figure transcript of the paper's
pages 286-291, driven by button events at screen coordinates.  The
final assertions are the paper's claims: the bug is found and fixed,
the program rebuilt, and the keystroke count is zero.
"""

from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR


class TestFullSession:
    def test_the_whole_demo(self, session):
        h = session.help
        h.stats.reset()

        # -- Figure 4: the boot screen ---------------------------------
        mail_stf = session.window("/help/mail/stf")
        db_stf = session.window("/help/db/stf")
        cbr_stf = session.window("/help/cbr/stf")
        edit_stf = session.window("/help/edit/stf")

        # -- Figure 5: read the headers ---------------------------------
        session.execute(mail_stf, "headers")
        mbox_w = session.window("/mail/box/rob/mbox")
        assert "2 sean" in mbox_w.body.string()

        # -- Figure 6: Sean's message ------------------------------------
        session.point_at(mbox_w, "sean")   # anywhere in the header line
        session.execute(mail_stf, "messages")
        msg_w = session.window("From")
        assert msg_w.tag.string().startswith("From sean")
        assert "TLB miss" in msg_w.body.string()

        # -- Figure 7: stack trace of the broken process ------------------
        session.point_at(msg_w, "176153")  # "I certainly shouldn't have to type it"
        session.execute(db_stf, "stack")
        stack_w = session.window(f"{SRC_DIR}/")
        trace = stack_w.body.string()
        assert "strlen(s=0x0) called from textinsert+0x30 text.c:32" in trace
        assert "176153 stack" in stack_w.tag.string()

        # -- Figure 8: Open text.c:32 --------------------------------------
        session.point_at(stack_w, "text.c:32", offset=2)
        session.execute(edit_stf, "Open")
        text_w = session.window(f"{SRC_DIR}/text.c")
        assert text_w.body.slice(text_w.body_sel.q0, text_w.body_sel.q1) \
            == "\tnn = strlen((char*)s);"

        # close it again with Close! in its own tag
        session.execute(text_w, "Close!", sub=Subwindow.TAG)
        assert h.window_by_name(f"{SRC_DIR}/text.c") is None

        # -- Figure 9: Open exec.c:252 ---------------------------------------
        session.point_at(stack_w, "exec.c:252", offset=2)
        session.execute(edit_stf, "Open")
        exec_w = session.window(f"{SRC_DIR}/exec.c")
        assert exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1) \
            == "\terrs(n);"

        # -- Figure 10: all uses of n ------------------------------------------
        line_start = exec_w.body.pos_of_line(252)
        n_off = exec_w.body.string().index("errs(n)", line_start) + 5
        h.left_click(*session.cell_of(exec_w, n_off))
        session.execute_sweep(cbr_stf, "uses *.c")
        uses_w = next(w for w in session.windows(f"{SRC_DIR}/")
                      if "dat.h:136" in w.body.string())
        assert uses_w.body.string() == \
            "./dat.h:136\nexec.c:213\nexec.c:252\nhelp.c:35\n"

        # -- Figure 11: the initialization, then the culprit --------------------
        session.point_at(uses_w, "help.c:35", offset=2)
        session.execute(edit_stf, "Open")
        help_w = session.window(f"{SRC_DIR}/help.c")
        assert 'n = (uchar*)"a test string";' in help_w.body.slice(
            help_w.body_sel.q0, help_w.body_sel.q1)

        session.point_at(uses_w, "exec.c:213", offset=2)
        session.execute(edit_stf, "Open")
        # exec.c window is reused and repositioned
        assert exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1) \
            == "\tn = 0;"

        # -- Figure 12: Cut the offending line, Put!, mk -------------------------
        start, end = exec_w.body.line_span(213)
        session.select(exec_w, start, end + 1)
        session.execute(edit_stf, "Cut")
        assert "Put!" in exec_w.tag.string()
        session.execute(exec_w, "Put!", sub=Subwindow.TAG)
        session.execute(cbr_stf, "mk")
        mk_w = session.window(f"{SRC_DIR}/mk")
        log = mk_w.body.string()
        assert "vc -w exec.c" in log
        assert "vl -o help" in log

        # -- the claims ------------------------------------------------------------
        assert "n = 0;" not in session.system.ns.read(f"{SRC_DIR}/exec.c")
        assert session.system.ns.exists(f"{SRC_DIR}/help")
        assert h.stats.keystrokes == 0, "the demo never touches the keyboard"
        assert not h.stats.touched_keyboard
        assert session.errors == ""


class TestFigureScenarios:
    """Each figure in isolation, with its interaction-cost claims."""

    def test_fig3_two_clicks_to_open(self, session):
        """'by pointing at dat.h ... and executing Open, a new window is
        created containing /usr/rob/src/help/dat.h: two button clicks.'"""
        h = session.help
        src_w = h.open_path(f"{SRC_DIR}/help.c")
        edit_stf = session.window("/help/edit/stf")
        h.stats.reset()
        session.point_at(src_w, "dat.h", offset=2)   # click 1
        session.execute(edit_stf, "Open")            # click 2
        assert h.window_by_name(f"{SRC_DIR}/dat.h") is not None
        assert h.stats.button_presses == 2
        assert h.stats.keystrokes == 0

    def test_fig3_typed_name_then_open(self, session):
        """Typing a full path leaves the null selection at its end;
        one click on Open grabs the whole name."""
        h = session.help
        scratch = h.new_window("/tmp/scratch", "")
        edit_stf = session.window("/help/edit/stf")
        x, y = session.cell_of(scratch, 0)
        h.mouse_move(x, y)
        h.type_text(f"{SRC_DIR}/help.c")
        session.execute(edit_stf, "Open")
        assert h.window_by_name(f"{SRC_DIR}/help.c") is not None

    def test_fig1_directory_window(self, session):
        """Opened directories show a trailing slash and list contents."""
        h = session.help
        w = h.new_window("/tmp/t", SRC_DIR)
        h.select(w, 0, len(SRC_DIR))
        session.execute(session.window("/help/edit/stf"), "Open")
        dir_w = session.window(f"{SRC_DIR}/")
        body = dir_w.body.string()
        assert "errs.c\n" in body and "file.c\n" in body

    def test_fig2_cut_by_sweeping(self, session):
        """Executing Cut by sweeping the word with the middle button."""
        h = session.help
        w = h.new_window("/tmp/f", "discard this Cut keeps that")
        session.select(w, 0, 8)
        session.execute_sweep(w, "Cut")
        assert w.body.string() == "this Cut keeps that"
        assert h.snarf == "discard "

    def test_fig5_headers_window_name(self, session):
        session.execute(session.window("/help/mail/stf"), "headers")
        w = session.window("/mail/box/rob/mbox")
        assert "/bin/help/mail" in w.tag.string()
        assert len(w.body.string().splitlines()) == 7

    def test_fig7_stack_window_context(self, session):
        """The stack window's tag names the source directory, giving
        Open of relative names like text.c:32 their context."""
        session.execute(session.window("/help/mail/stf"), "headers")
        mbox_w = session.window("/mail/box/rob/mbox")
        session.point_at(mbox_w, "sean")
        session.execute(session.window("/help/mail/stf"), "messages")
        msg_w = session.window("From")
        session.point_at(msg_w, "176153")
        session.execute(session.window("/help/db/stf"), "stack")
        stack_w = session.window(f"{SRC_DIR}/")
        assert stack_w.directory() == SRC_DIR

    def test_fig10_uses_beats_grep(self, session):
        """uses lists 4 references; grep n *.c floods with every letter n."""
        h = session.help
        exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
        start = exec_w.body.pos_of_line(252)
        n_off = exec_w.body.string().index("errs(n)", start) + 5
        h.left_click(*session.cell_of(exec_w, n_off))
        session.execute_sweep(session.window("/help/cbr/stf"), "uses *.c")
        uses_w = next(w for w in session.windows(f"{SRC_DIR}/")
                      if "dat.h:136" in w.body.string())
        uses_lines = len(uses_w.body.string().splitlines())

        shell = session.system.shell(SRC_DIR)
        grep = shell.run(f"grep -c n {SRC_DIR}/*.c")
        grep_hits = sum(int(line.split(":")[-1])
                        for line in grep.stdout.splitlines())
        assert uses_lines == 4
        assert grep_hits > 10 * uses_lines

    def test_claim_three_clicks_to_declaration(self, session):
        """'with only three button clicks one may fetch to the screen the
        declaration' — point, decl, point at output (src closes the loop
        so the third click Opens it)."""
        h = session.help
        exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
        cbr_stf = session.window("/help/cbr/stf")
        start = exec_w.body.pos_of_line(252)
        n_off = exec_w.body.string().index("errs(n)", start) + 5
        h.stats.reset()
        h.left_click(*session.cell_of(exec_w, n_off))    # click 1
        session.execute(cbr_stf, "decl")                 # click 2
        decl_w = next(w for w in session.windows(f"{SRC_DIR}/")
                      if "dat.h:136" in w.body.string())
        session.point_at(decl_w, "dat.h:136", offset=1)  # click 3
        assert h.stats.button_presses == 3
        session.execute(session.window("/help/edit/stf"), "Open")
        dat_w = session.window(f"{SRC_DIR}/dat.h")
        assert dat_w.body.line_of(dat_w.org) == 136


class TestFileServerScripting:
    """'The interface seen by programs' — driven from a plain shell."""

    def test_cp_window_body(self, session):
        h = session.help
        w = h.new_window("/tmp/doc", "precious words\n")
        shell = session.system.shell()
        result = shell.run(f"cp /mnt/help/{w.id}/body /tmp/saved")
        assert result.status == 0
        assert session.system.ns.read("/tmp/saved") == "precious words\n"

    def test_grep_window_body(self, session):
        h = session.help
        w = h.new_window("/tmp/doc", "alpha\nbeta\n")
        shell = session.system.shell()
        result = shell.run(f"grep beta /mnt/help/{w.id}/body")
        assert result.stdout == "beta\n"

    def test_index_connects_names_to_numbers(self, session):
        h = session.help
        w = h.new_window("/tmp/indexed", "x")
        shell = session.system.shell()
        result = shell.run("grep indexed /mnt/help/index")
        assert result.stdout.startswith(f"{w.id}\t")

    def test_new_window_from_script(self, session):
        shell = session.system.shell()
        script = """x=`{cat /mnt/help/new/ctl}
echo tag /tmp/made Close! > /mnt/help/$x/ctl
echo hello > /mnt/help/$x/body
echo $x
"""
        result = shell.run(script)
        wid = int(result.stdout.strip())
        window = session.help.windows[wid]
        assert window.name() == "/tmp/made"
        assert window.body.string() == "hello\n"

    def test_zero_keystrokes_includes_scripting(self, session):
        """Scripted window work never counts as user keystrokes."""
        session.help.stats.reset()
        shell = session.system.shell()
        shell.run("x=`{cat /mnt/help/new/ctl}; echo hi > /mnt/help/$x/body")
        assert session.help.stats.keystrokes == 0
