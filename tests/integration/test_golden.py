"""Golden-screen regression tests.

The renderer's output is deterministic, so whole screens are pinned
byte for byte.  If a layout or rendering change is intentional,
regenerate with::

    python -c "from repro import build_system, render_screen; \\
        s = build_system(width=160, height=60); \\
        open('tests/golden/boot_160x60.txt','w').write(\\
            render_screen(s.help, footer=False))"

(and similarly for the headers screen — see the fixtures below).
"""

import pathlib

from repro import build_system, render_screen

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "golden"


def golden(name: str) -> str:
    return (GOLDEN / name).read_text()


class TestGoldenScreens:
    def test_boot_screen(self):
        system = build_system(width=160, height=60)
        assert render_screen(system.help, footer=False) == \
            golden("boot_160x60.txt")

    def test_headers_screen(self):
        system = build_system(width=160, height=60)
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert render_screen(h, footer=False) == \
            golden("headers_160x60.txt")

    def test_boot_is_deterministic(self):
        shots = set()
        for _ in range(3):
            system = build_system(width=160, height=60)
            shots.add(render_screen(system.help))
        assert len(shots) == 1

    def test_golden_files_exist(self):
        assert (GOLDEN / "boot_160x60.txt").exists()
        assert (GOLDEN / "headers_160x60.txt").exists()
