"""Fixtures for the integration suite."""

import pytest

from repro import build_system
from repro.testing import Session


@pytest.fixture
def session():
    return Session(build_system(width=160, height=60))
