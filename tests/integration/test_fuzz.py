"""Fuzzing the system: random input must never corrupt invariants.

A user interface "should be dynamic and responsive, efficient and
invisible" — and it must also survive a cat on the mouse.  These
property tests drive random event streams, ctl messages, and shell
words through the full stack and assert the structural invariants
afterwards.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import build_system
from repro.core.events import Button
from repro.helpfs.ctl import CtlError, apply_ctl, escape


def check_invariants(h):
    """The structural invariants every operation must preserve."""
    for column in h.screen.columns:
        previous_bottom = None
        for window in column.visible():
            rect = column.win_rect(window)
            assert rect is not None and rect.height >= 1
            if previous_bottom is not None:
                assert rect.y0 == previous_bottom
            previous_bottom = rect.y1
        if column.visible():
            assert previous_bottom == column.rect.y1
    for window in h.windows.values():
        for sel in (window.body_sel, window.tag_sel):
            pass
        assert 0 <= window.body_sel.q0 <= window.body_sel.q1 <= len(window.body)
        assert 0 <= window.tag_sel.q0 <= window.tag_sel.q1 <= len(window.tag)
        assert 0 <= window.org <= len(window.body) + 1


events = st.lists(
    st.tuples(
        st.sampled_from(["press", "drag", "release", "type", "move"]),
        st.integers(-5, 165),
        st.integers(-5, 65),
        st.sampled_from([Button.LEFT, Button.MIDDLE, Button.RIGHT]),
        st.text(alphabet="abc /\n", max_size=4),
    ),
    max_size=60,
)


class TestEventFuzz:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events)
    def test_random_events_never_corrupt(self, stream):
        system = build_system(width=160, height=60)
        h = system.help
        h.open_path("/usr/rob/lib/profile")
        for kind, x, y, button, text in stream:
            if kind == "press":
                h.mouse_press(x, y, button)
            elif kind == "drag":
                h.mouse_drag(x, y)
            elif kind == "release":
                h.mouse_release(x, y, button)
            elif kind == "move":
                h.mouse_move(x, y)
            else:
                h.type_text(text)
        check_invariants(h)
        # the file server stays coherent too
        index = system.ns.read("/mnt/help/index")
        for line in index.splitlines():
            number = int(line.split("\t", 1)[0])
            assert number in h.windows


ctl_lines = st.lists(
    st.one_of(
        st.builds(lambda p, t: f"insert {p} {escape(t)}",
                  st.integers(-5, 200), st.text(alphabet="ab\n\t", max_size=6)),
        st.builds(lambda a, b: f"delete {a} {b}",
                  st.integers(-5, 200), st.integers(-5, 200)),
        st.builds(lambda a, b, t: f"replace {a} {b} {escape(t)}",
                  st.integers(0, 200), st.integers(0, 200),
                  st.text(alphabet="xy", max_size=4)),
        st.builds(lambda a, b: f"select {a} {b}",
                  st.integers(-9, 300), st.integers(-9, 300)),
        st.builds(lambda n: f"show {n}", st.integers(-3, 50)),
        st.builds(lambda n: f"scroll {n}", st.integers(-30, 30)),
        st.just("clean"),
        st.just("dirty"),
        st.just("name /tmp/renamed"),
        st.text(alphabet="abcdef 123", max_size=12),  # garbage
    ),
    max_size=25,
)


class TestCtlFuzz:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ctl_lines)
    def test_ctl_messages_never_corrupt(self, lines):
        system = build_system()
        h = system.help
        window = h.new_window("/tmp/fuzzed", "seed text\nwith lines\n")
        for line in lines:
            try:
                apply_ctl(h, window, line)
            except CtlError:
                pass  # rejected cleanly is fine; corruption is not
            if window.id not in h.windows:
                return  # a 'close' line ended the window's life
            assert 0 <= window.body_sel.q0 <= window.body_sel.q1 \
                <= len(window.body)
            assert 0 <= window.org <= len(window.body) + 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100), st.text(alphabet="ab\n\\'\t", max_size=12))
    def test_ctl_insert_escaping_roundtrip(self, pos, text):
        system = build_system()
        h = system.help
        window = h.new_window("/tmp/w", "")
        apply_ctl(h, window, f"insert {pos} {escape(text)}")
        assert window.body.string() == text


class TestShellFuzz:
    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="abc d$|;'{}`\n*", max_size=20))
    def test_shell_never_crashes(self, source):
        """Any input is either executed or rejected with a message."""
        system = build_system()
        shell = system.shell()
        result = shell.run(source)
        assert isinstance(result.status, int)

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="abc def!#${}|&", min_size=1, max_size=15))
    def test_quoting_protects_anything(self, text):
        system = build_system()
        shell = system.shell()
        quoted = "'" + text.replace("'", "''") + "'"
        result = shell.run(f"echo {quoted}")
        assert result.status == 0
        assert result.stdout == text + "\n"
