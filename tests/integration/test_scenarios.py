"""Further end-to-end scenarios beyond the paper's main demo."""

from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR


class TestWindowManagementSession:
    def test_drag_between_columns(self, session):
        """Right-drag a window's tag into the other column."""
        h = session.help
        w = h.open_path("/usr/rob/lib/profile")
        src_col = h.screen.column_of(w)
        dst_col = next(c for c in h.screen.columns if c is not src_col)
        x, y = session.cell_of(w, 0, Subwindow.TAG)
        h.right_drag(x, y, dst_col.body_x0 + 5, dst_col.rect.y0 + 2)
        assert h.screen.column_of(w) is dst_col
        rect = dst_col.win_rect(w)
        assert rect is not None and rect.height >= 1

    def test_tab_click_cycles_buried_windows(self, session):
        """Open enough windows to bury some, then dig them out by tab."""
        h = session.help
        column = h.screen.columns[0]
        long_body = "".join(f"text line {i}\n" for i in range(80))
        windows = [h.new_window(f"/tmp/deep{i}", long_body, column=column)
                   for i in range(12)]
        buried = [w for w in windows if w.hidden]
        assert buried, "the workload must bury something"
        for w in buried:
            order = column.tab_order()
            tab_y = column.rect.y0 + order.index(w)
            h.left_click(column.rect.x0, tab_y)
            assert not w.hidden
            assert column.win_rect(w).y1 == column.rect.y1

    def test_expand_column_and_restore(self, session):
        h = session.help
        w = h.open_path("/usr/rob/lib/profile")
        column = h.screen.column_of(w)
        original = column.rect.width
        h.left_click(column.rect.x0, 0)
        assert column.rect.width > original
        # text still renders and hit-testing still lands in the window
        x, y = session.cell_of(w, 0)
        assert h.screen.hit(x, y).window is w
        h.left_click(column.rect.x0, 0)
        assert column.rect.width == original

    def test_scroll_a_long_file_by_strip_clicks(self, session):
        h = session.help
        body = "".join(f"line number {i}\n" for i in range(300))
        w = h.new_window("/tmp/long", body, column=h.screen.columns[0])
        column = h.screen.column_of(w)
        rect = column.win_rect(w)
        strip_y = rect.y0 + (rect.height // 2)
        h.middle_click(column.rect.x0, strip_y)  # scroll toward the end
        first_scroll = w.org
        assert first_scroll > 0
        h.middle_click(column.rect.x0, strip_y)
        assert w.org > first_scroll
        h.left_click(column.rect.x0, strip_y)    # back up
        assert w.org < first_scroll * 2

    def test_close_all_restores_space(self, session):
        h = session.help
        column = h.screen.columns[0]
        before = len(column.windows)
        opened = [h.new_window(f"/tmp/t{i}", "x\n", column=column)
                  for i in range(5)]
        for w in opened:
            session.execute(w, "Close!", sub=Subwindow.TAG)
        assert len(column.windows) == before


class TestMailAnswerSession:
    def test_reply_to_sean(self, session):
        """Finish what the paper stopped short of: answer the mail.

        'I'll stop now, though, because to answer his mail I'd have to
        type something.'  We type it.
        """
        h = session.help
        mail_stf = session.window("/help/mail/stf")
        session.execute(mail_stf, "headers")
        mbox_w = session.window("/mail/box/rob/mbox")
        session.point_at(mbox_w, "sean")
        session.execute(mail_stf, "messages")

        # compose in a new window
        reply = h.new_window("/tmp/reply", "")
        column = h.screen.column_of(reply)
        rect = column.win_rect(reply)
        h.mouse_move(column.body_x0, rect.y0 + 1)
        h.type_text("fixed — Xdie1 was clearing n. new binary installed.\n")
        # point at 'sean' in the message window, then execute send
        session.point_at(session.window("From"), "sean")
        # ... but send mails the *composed* window body: select it first
        h.current = (reply, Subwindow.BODY)
        # send wants the recipient as the pointed word and the body from
        # the selection's window: select the word sean again, in reply
        reply.body.insert(0, "")
        session.point_at(session.window("From"), "sean")
        shell = session.system.shell()
        shell.set("helpsel", [
            f"{session.window('From').id}:body:"
            f"{session.window('From').body_sel.q0}:"
            f"{session.window('From').body_sel.q1}"])
        # run the send script directly against the composed window
        out = shell.run(
            f"cat /mnt/help/{reply.id}/body | mbox sendstdin sean")
        assert out.status == 0
        from repro.mail import Mailbox
        seans = Mailbox(session.system.ns, "/mail/box/sean/mbox")
        assert len(seans.messages()) == 1
        assert "fixed" in seans.messages()[0].body

    def test_send_tool_script(self, session):
        """The /help/mail/send script end to end."""
        h = session.help
        compose = h.new_window("/tmp/draft",
                               "lunch at noon works for me\n")
        target = h.new_window("/tmp/to", "send this to howard please\n")
        session.point_at(target, "howard")
        # re-select inside the draft's window? no: send reads $wid from
        # the selection; the pointed word is the recipient and the body
        # comes from the same window. Point at howard inside the draft:
        compose.body.insert(0, "howard: ")
        session.point_at(compose, "howard")
        session.execute(session.window("/help/mail/stf"), "send")
        from repro.mail import Mailbox
        box = Mailbox(session.system.ns, "/mail/box/howard/mbox")
        assert len(box.messages()) == 1
        assert "lunch at noon" in box.messages()[0].body


class TestShellWindowSession:
    def test_shell_window_drives_everything(self, session):
        """Open a shell window by mouse and use it to script help."""
        h = session.help
        anchor = h.open_path(f"{SRC_DIR}/help.c")
        session.point_at(anchor, "main")
        # type Shell into the scratch area of the tag and execute it
        h.exec_builtin("Shell", anchor)
        shell_w = session.window(f"{SRC_DIR}/-rc")
        # type a command: it runs in the window's directory
        h.current = (shell_w, Subwindow.BODY)
        h.mouse_move(-1, -1)
        h.type_text("grep -n Xdie1 exec.c\n")
        body = shell_w.body.string()
        assert "211:" in body  # the Xdie1 definition line
        # and it can drive windows through /mnt/help
        h.current = (shell_w, Subwindow.BODY)
        h.type_text(f"echo 'show 35' > /mnt/help/{anchor.id}/ctl\n")
        assert anchor.body.line_of(anchor.org) == 35
