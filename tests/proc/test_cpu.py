"""Tests for the simulated CPU server."""

import pytest

from repro import build_system
from repro.proc.cpu import CpuServer, RemoteRunner
from repro.shell.commands import DEFAULT_COMMANDS
from repro.fs import VFS, Namespace


@pytest.fixture
def terminal_ns():
    fs = VFS()
    fs.mkdir("/bin")
    fs.mkdir("/usr/rob", parents=True)
    fs.create("/usr/rob/data", "shared file\n")
    return Namespace(fs)


class TestCpuServer:
    def test_remote_command_runs(self, terminal_ns):
        server = CpuServer()
        conn = server.dial(terminal_ns, DEFAULT_COMMANDS)
        result = conn.run("echo remote", "/", {})
        assert result.stdout == "remote\n"
        assert result.status == 0

    def test_shared_files(self, terminal_ns):
        conn = CpuServer().dial(terminal_ns, DEFAULT_COMMANDS)
        assert conn.run("cat /usr/rob/data", "/", {}).stdout == "shared file\n"
        conn.run("echo written remotely > /usr/rob/out", "/", {})
        assert terminal_ns.read("/usr/rob/out") == "written remotely\n"

    def test_remote_binds_stay_remote(self, terminal_ns):
        terminal_ns.mkdir("/tmp")
        conn = CpuServer().dial(terminal_ns, DEFAULT_COMMANDS)
        conn.run("bind /usr/rob /tmp", "/", {})
        assert conn.ns.exists("/tmp/data")
        assert not terminal_ns.exists("/tmp/data")

    def test_terminal_binds_before_dial_are_exported(self, terminal_ns):
        terminal_ns.mkdir("/tmp")
        terminal_ns.bind("/usr/rob", "/tmp")
        conn = CpuServer().dial(terminal_ns, DEFAULT_COMMANDS)
        assert conn.run("cat /tmp/data", "/", {}).stdout == "shared file\n"

    def test_env_and_cpu_marker(self, terminal_ns):
        conn = CpuServer().dial(terminal_ns, DEFAULT_COMMANDS)
        result = conn.run("echo $task on cpu$cpu", "/", {"task": "build"})
        assert result.stdout == "build on cpu1\n"

    def test_history_recorded(self, terminal_ns):
        conn = CpuServer().dial(terminal_ns, DEFAULT_COMMANDS)
        conn.run("echo a", "/", {})
        conn.run("echo b", "/", {})
        assert conn.history == ["echo a", "echo b"]

    def test_remote_runner_contract(self, terminal_ns):
        runner = RemoteRunner(CpuServer().dial(terminal_ns, DEFAULT_COMMANDS))
        result = runner("pwd", "/usr/rob", {})
        assert result.stdout == "/usr/rob\n"


class TestRemoteSystem:
    def test_remote_help_commands_reach_windows(self):
        """The whole point: a remotely run tool still drives the screen,
        because /mnt/help is in the exported namespace."""
        system = build_system(remote=True)
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        mbox_w = h.window_by_name("/mail/box/rob/mbox")
        assert mbox_w is not None
        assert "2 sean" in mbox_w.body.string()

    def test_remote_session_full_stack_trace(self):
        system = build_system(remote=True)
        h = system.help
        w = h.new_window("/tmp/note", "176153")
        h.point_at(w, 2)
        h.execute_text(h.window_by_name("/help/db/stf"), "stack")
        stack_w = h.window_by_name("/usr/rob/src/help/")
        assert "textinsert" in stack_w.body.string()

    def test_remote_mk(self):
        system = build_system(remote=True)
        h = system.help
        src = h.open_path("/usr/rob/src/help/exec.c")
        h.point_at(src, 0)
        h.execute_text(h.window_by_name("/help/cbr/stf"), "mk")
        mk_w = h.window_by_name("/usr/rob/src/help/mk")
        assert "vl -o help" in mk_w.body.string()
        assert system.ns.exists("/usr/rob/src/help/help")

    def test_remote_errors_reach_errors_window(self):
        system = build_system(remote=True)
        h = system.help
        w = h.new_window("/tmp/x", "")
        h.execute_text(w, "no-such-thing")
        assert "not found" in h.window_by_name("Errors").body.string()
