"""Tests for the process table, symbol tables, and adb."""

import pytest

from repro.fs import VFS, Namespace
from repro.proc import (
    Adb,
    CoreImage,
    Frame,
    ProcessTable,
    Registers,
    SymbolTable,
    cmd_adb,
    cmd_ps,
    paper_crash,
)
from repro.proc.crash import PAPER_PID, crash_report, synthetic_crash
from repro.proc.process import ProcState
from repro.shell import Interp


class TestSymbolTable:
    def test_add_and_lookup(self):
        table = SymbolTable("/bin/x")
        table.add_func("main", "main.c", 10)
        sym = table.lookup("main")
        assert sym.kind == "func"
        assert sym.location == "main.c:10"

    def test_addresses_monotonic(self):
        table = SymbolTable()
        a = table.add_func("a", "a.c", 1)
        b = table.add_func("b", "b.c", 1)
        assert b.address > a.address

    def test_find_address(self):
        table = SymbolTable()
        a = table.add_func("a", "a.c", 1)
        b = table.add_func("b", "b.c", 1)
        sym, off = table.find_address(a.address + 8)
        assert sym is a and off == 8
        sym, off = table.find_address(b.address)
        assert sym is b and off == 0

    def test_find_address_below_text(self):
        table = SymbolTable()
        table.add_func("a", "a.c", 1)
        assert table.find_address(0) is None

    def test_globals_and_files(self):
        table = SymbolTable()
        table.add_func("f", "f.c", 1)
        table.add_data("n", "dat.h", 136)
        assert [s.name for s in table.globals()] == ["n"]
        assert table.files() == ["dat.h", "f.c"]

    def test_len(self):
        table = SymbolTable()
        table.add_func("f", "f.c", 1)
        assert len(table) == 1


class TestProcessTable:
    def test_spawn_assigns_pids(self):
        procs = ProcessTable()
        a = procs.spawn("a")
        b = procs.spawn("b")
        assert b.pid == a.pid + 1

    def test_spawn_specific_pid(self):
        procs = ProcessTable()
        p = procs.spawn("x", pid=500)
        assert p.pid == 500
        assert procs.spawn("y").pid == 501

    def test_duplicate_pid_rejected(self):
        procs = ProcessTable()
        procs.spawn("x", pid=5)
        with pytest.raises(ValueError):
            procs.spawn("y", pid=5)

    def test_break_and_broken_listing(self):
        procs = ProcessTable()
        p = procs.spawn("crashy")
        p.break_with(CoreImage(exception="boom"))
        assert p.state is ProcState.BROKEN
        assert procs.broken() == [p]

    def test_finish(self):
        procs = ProcessTable()
        p = procs.spawn("x")
        p.finish()
        assert procs.broken() == []
        assert p.state is ProcState.DONE

    def test_ps_lines(self):
        procs = ProcessTable()
        procs.spawn("alpha")
        lines = procs.ps_lines()
        assert len(lines) == 1
        assert "alpha" in lines[0]
        assert "Running" in lines[0]

    def test_registers_lines(self):
        regs = Registers(pc=0x18df4, sp=0x3f4e8, status=0xfb0c,
                         gp={"R3": 0})
        lines = regs.lines()
        assert "pc\t0x18df4" in lines
        assert "R3\t0x0" in lines


class TestPaperCrash:
    def test_installs_pid(self):
        procs = ProcessTable()
        proc = paper_crash(procs)
        assert proc.pid == PAPER_PID
        assert proc.state is ProcState.BROKEN

    def test_trace_matches_figure7(self):
        procs = ProcessTable()
        proc = paper_crash(procs)
        trace = Adb(proc).run("$C")
        assert trace.startswith("last exception: TLB miss (load or fetch)\n")
        assert "/sys/src/libc/mips/strchr.s:34" in trace
        assert ("strlen(s=0x0) called from textinsert+0x30 text.c:32"
                in trace)
        assert ("textinsert(sel=0x1, t=0x40e60, s=0x0, q0=0xd, full=0x1) "
                "called from errs+0xe8 errs.c:34" in trace)
        assert "\tn = 0x3d7cc" in trace
        assert "errs(s=0x0) called from Xdie2+0x14 exec.c:252" in trace
        assert "Xdie2() called from lookup+0xc4 exec.c:101" in trace
        assert "execute(t=0x3ebbc, p0=0x2, p1=0x2) called from " \
            "control+0x430 ctrl.c:331" in trace

    def test_plain_trace_omits_locals(self):
        procs = ProcessTable()
        trace = Adb(paper_crash(procs)).run("$c")
        assert "n = 0x3d7cc" not in trace
        assert "called from" in trace

    def test_registers(self):
        procs = ProcessTable()
        out = Adb(paper_crash(procs)).run("$r")
        assert "pc\t0x18df4" in out
        assert "sp\t0x3f4e8" in out

    def test_exception_and_pc(self):
        procs = ProcessTable()
        adb = Adb(paper_crash(procs))
        assert adb.run("$e") == "last exception: TLB miss (load or fetch)\n"
        assert adb.run("$p") == "/sys/src/libc/mips/strchr.s:34\n"

    def test_crash_report_text(self):
        report = crash_report()
        assert "help 176153: user TLB miss" in report
        assert "pc=0x18df4" in report

    def test_symtab_has_the_culprits(self):
        procs = ProcessTable()
        table = paper_crash(procs).symtab
        assert table.lookup("Xdie1") is not None
        assert table.lookup("n").location == "dat.h:136"


class TestAdbErrors:
    def test_not_broken(self):
        procs = ProcessTable()
        p = procs.spawn("healthy")
        assert "not broken" in Adb(p).run("$c")

    def test_bad_command(self):
        procs = ProcessTable()
        p = paper_crash(procs)
        assert "bad command" in Adb(p).run("$z")


class TestShellIntegration:
    @pytest.fixture
    def sh(self):
        fs = VFS()
        fs.mkdir("/bin")
        ns = Namespace(fs)
        procs = ProcessTable()
        paper_crash(procs)
        synthetic_crash(procs, "other", depth=3)
        interp = Interp(ns)
        interp.commands["adb"] = cmd_adb(procs)
        interp.commands["ps"] = cmd_ps(procs)
        return interp

    def test_ps(self, sh):
        out = sh.run("ps").stdout
        assert "176153 Broken   help" in out

    def test_ps_broken_only(self, sh):
        out = sh.run("ps -b").stdout
        assert all("Broken" in line for line in out.splitlines())

    def test_adb_via_pipe(self, sh):
        """The db tool's idiom: echo '$C' | adb pid."""
        result = sh.run("echo '$C' | adb 176153")
        assert result.status == 0
        assert "textinsert" in result.stdout

    def test_adb_no_such_process(self, sh):
        result = sh.run("echo '$c' | adb 99999")
        assert result.status == 1
        assert "no process" in result.stderr

    def test_adb_usage(self, sh):
        assert sh.run("adb notapid").status == 1

    def test_synthetic_crash_depth(self, sh):
        sh.run("echo '$c' | adb " + "104")
        # synthetic pid may vary; find it via ps instead
        out = sh.run("ps").stdout
        pid = next(line.split()[0] for line in out.splitlines()
                   if "other" in line)
        trace = sh.run(f"echo '$c' | adb {pid}").stdout
        assert trace.count("called from") == 3
