"""Tests for the /mnt/help file server, driven through a namespace."""

import pytest

from repro.core.help import Help
from repro.fs import VFS, Namespace
from repro.helpfs import HelpFS


@pytest.fixture
def world():
    fs = VFS()
    fs.mkdir("/mnt", parents=True)
    fs.mkdir("/tmp")
    fs.create("/tmp/readme", "data\n")
    return Namespace(fs)


@pytest.fixture
def app(world):
    app = Help(world, width=100, height=40)
    HelpFS(app).mount(world)
    return app


class TestReading:
    def test_body_read(self, app, world):
        w = app.new_window("/tmp/readme", "window contents\n")
        assert world.read(f"/mnt/help/{w.id}/body") == "window contents\n"

    def test_tag_read(self, app, world):
        w = app.new_window("/tmp/readme")
        assert world.read(f"/mnt/help/{w.id}/tag") == \
            "/tmp/readme Close! Get!\n"

    def test_cp_body_to_file(self, app, world):
        """The paper's `cp /mnt/help/7/body file` scripting example."""
        w = app.new_window("/tmp/readme", "precious text\n")
        world.write("/tmp/copy", world.read(f"/mnt/help/{w.id}/body"))
        assert world.read("/tmp/copy") == "precious text\n"

    def test_index_lists_windows(self, app, world):
        w1 = app.new_window("/tmp/a", "")
        w2 = app.new_window("/tmp/b", "")
        index = world.read("/mnt/help/index")
        lines = index.splitlines()
        assert f"{w1.id}\t/tmp/a Close! Get!" in lines
        assert f"{w2.id}\t/tmp/b Close! Get!" in lines

    def test_listing_root(self, app, world):
        w = app.new_window("/tmp/a")
        names = world.listdir("/mnt/help")
        assert "index" in names
        assert "new" in names
        assert str(w.id) in names

    def test_window_dir_contents(self, app, world):
        w = app.new_window("/tmp/a")
        assert world.listdir(f"/mnt/help/{w.id}") == \
            ["body", "bodyapp", "ctl", "tag"]

    def test_missing_window_number(self, app, world):
        assert not world.exists("/mnt/help/999/body")

    def test_closed_window_disappears(self, app, world):
        w = app.new_window("/tmp/a")
        path = f"/mnt/help/{w.id}"
        assert world.exists(path)
        app.close_window(w)
        assert not world.exists(path)

    def test_ctl_status(self, app, world):
        w = app.new_window("/tmp/a", "12345")
        app.select(w, 1, 3)
        status = world.read(f"/mnt/help/{w.id}/ctl")
        wid, taglen, bodylen, dirty, q0, q1 = status.split()
        assert int(wid) == w.id
        assert int(bodylen) == 5
        assert (int(q0), int(q1)) == (1, 3)
        assert int(dirty) == 0


class TestWriting:
    def test_body_write_replaces(self, app, world):
        w = app.new_window("/tmp/a", "old")
        world.write(f"/mnt/help/{w.id}/body", "new contents")
        assert w.body.string() == "new contents"

    def test_bodyapp_appends(self, app, world):
        w = app.new_window("/tmp/a", "start\n")
        world.append(f"/mnt/help/{w.id}/bodyapp", "appended\n")
        assert w.body.string() == "start\nappended\n"

    def test_bodyapp_multiple_writes(self, app, world):
        w = app.new_window("/tmp/a", "")
        with world.open(f"/mnt/help/{w.id}/bodyapp", "w") as f:
            f.write("one\n")
            f.write("two\n")
        assert w.body.string() == "one\ntwo\n"

    def test_ctl_insert(self, app, world):
        w = app.new_window("/tmp/a", "ac")
        world.append(f"/mnt/help/{w.id}/ctl", "insert 1 b\n")
        assert w.body.string() == "abc"

    def test_ctl_insert_with_escapes(self, app, world):
        w = app.new_window("/tmp/a", "")
        world.append(f"/mnt/help/{w.id}/ctl", "insert 0 two\\nlines\\n\n")
        assert w.body.string() == "two\nlines\n"

    def test_ctl_delete(self, app, world):
        w = app.new_window("/tmp/a", "abcdef")
        world.append(f"/mnt/help/{w.id}/ctl", "delete 1 4\n")
        assert w.body.string() == "aef"

    def test_ctl_replace(self, app, world):
        w = app.new_window("/tmp/a", "hello world")
        world.append(f"/mnt/help/{w.id}/ctl", "replace 0 5 goodbye\n")
        assert w.body.string() == "goodbye world"

    def test_ctl_select(self, app, world):
        w = app.new_window("/tmp/a", "abcdef")
        world.append(f"/mnt/help/{w.id}/ctl", "select 2 4\n")
        assert (w.body_sel.q0, w.body_sel.q1) == (2, 4)
        assert app.current == (w, __import__("repro.core.window",
                                             fromlist=["Subwindow"]).Subwindow.BODY)

    def test_ctl_show_line(self, app, world):
        w = app.new_window("/tmp/a", "one\ntwo\nthree\n")
        world.append(f"/mnt/help/{w.id}/ctl", "show 3\n")
        assert w.body.line_of(w.org) == 3

    def test_ctl_name(self, app, world):
        w = app.new_window("/tmp/a")
        world.append(f"/mnt/help/{w.id}/ctl", "name /tmp/renamed\n")
        assert w.name() == "/tmp/renamed"

    def test_ctl_tag(self, app, world):
        w = app.new_window("/tmp/a")
        world.append(f"/mnt/help/{w.id}/ctl", "tag /custom Close!\n")
        assert w.tag.string() == "/custom Close!"

    def test_ctl_clean_dirty(self, app, world):
        w = app.new_window("/tmp/a", "x")
        world.append(f"/mnt/help/{w.id}/ctl", "dirty\n")
        assert w.dirty
        world.append(f"/mnt/help/{w.id}/ctl", "clean\n")
        assert not w.dirty

    def test_ctl_close(self, app, world):
        w = app.new_window("/tmp/a")
        world.append(f"/mnt/help/{w.id}/ctl", "close\n")
        assert w.id not in app.windows

    def test_ctl_scroll(self, app, world):
        body = "".join(f"l{i}\n" for i in range(50))
        w = app.new_window("/tmp/a", body)
        world.append(f"/mnt/help/{w.id}/ctl", "scroll 3\n")
        assert w.org == body.index("l3\n")

    def test_ctl_several_messages_one_write(self, app, world):
        w = app.new_window("/tmp/a", "")
        world.append(f"/mnt/help/{w.id}/ctl",
                     "insert 0 hello\ndirty\nselect 0 5\n")
        assert w.body.string() == "hello"
        assert w.dirty
        assert (w.body_sel.q0, w.body_sel.q1) == (0, 5)

    def test_bad_ctl_reported_to_errors(self, app, world):
        w = app.new_window("/tmp/a")
        world.append(f"/mnt/help/{w.id}/ctl", "frobnicate 1 2\n")
        errors = app.window_by_name("Errors")
        assert errors is not None
        assert "unknown message" in errors.body.string()

    def test_ctl_bad_numbers_reported(self, app, world):
        w = app.new_window("/tmp/a", "xyz")
        world.append(f"/mnt/help/{w.id}/ctl", "delete one two\n")
        assert "bad number" in app.window_by_name("Errors").body.string()
        assert w.body.string() == "xyz"

    def test_ctl_clamps_out_of_range(self, app, world):
        w = app.new_window("/tmp/a", "abc")
        world.append(f"/mnt/help/{w.id}/ctl", "insert 999 Z\n")
        assert w.body.string() == "abcZ"
        world.append(f"/mnt/help/{w.id}/ctl", "delete 1 999\n")
        assert w.body.string() == "a"


class TestNewWindow:
    def test_open_new_ctl_creates_window(self, app, world):
        before = set(app.windows)
        with world.open("/mnt/help/new/ctl") as f:
            wid = int(f.read().strip())
        assert wid in app.windows
        assert set(app.windows) - before == {wid}

    def test_new_window_near_selection(self, app, world):
        anchor = app.new_window("/tmp/a", "text",
                                column=app.screen.columns[1])
        app.select(anchor, 0, 2)
        with world.open("/mnt/help/new/ctl") as f:
            wid = int(f.read().strip())
        assert app.screen.column_of(app.windows[wid]) is app.screen.columns[1]

    def test_new_ctl_accepts_messages(self, app, world):
        with world.open("/mnt/help/new/ctl", "rw") as f:
            wid = int(f.read().strip())
            f.write("name /tmp/made\n")
            f.write("insert 0 contents\n")
        window = app.windows[wid]
        assert window.name() == "/tmp/made"
        assert window.body.string() == "contents"

    def test_paper_workflow(self, app, world):
        """The decl script's skeleton: make a window, fill it."""
        with world.open("/mnt/help/new/ctl") as f:
            x = f.read().strip()
        world.append(f"/mnt/help/{x}/ctl",
                     "name /usr/rob/src/help/ Close!\n".replace("name ", "tag "))
        world.append(f"/mnt/help/{x}/bodyapp", "dat.h:136 n declared here\n")
        window = app.windows[int(x)]
        assert "dat.h:136" in window.body.string()


class TestTagWrite:
    def test_write_tag_replaces(self, app, world):
        w = app.new_window("/tmp/a")
        world.write(f"/mnt/help/{w.id}/tag", "/renamed Close!\n")
        assert w.tag.string() == "/renamed Close!"
        assert w.name() == "/renamed"

    def test_tag_write_without_newline(self, app, world):
        w = app.new_window("/tmp/a")
        with world.open(f"/mnt/help/{w.id}/tag", "w") as f:
            f.write("/other Close!")
        assert w.name() == "/other"

    def test_tag_read_after_write(self, app, world):
        w = app.new_window("/tmp/a")
        world.write(f"/mnt/help/{w.id}/tag", "/new-name Close! Get!\n")
        assert world.read(f"/mnt/help/{w.id}/tag") == "/new-name Close! Get!\n"
