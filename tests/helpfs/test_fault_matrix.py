"""Fault-injection matrix over /mnt/help: the interface must degrade
gracefully when its own file server misbehaves.

Every test wraps the mounted help server in a
:class:`~repro.fs.faults.FaultPlan`, drives the system through the
shell or the help app itself, and asserts three things: the scheduled
faults actually fired (counters match the schedule), the failure
surfaced as a structured diagnostic, and help stayed live — the screen
still renders and further commands still work.
"""

import pathlib

import pytest

from repro import build_system, render_screen
from repro.core.help import ERRORS
from repro.fs import Fault, FaultPlan, wrap
from repro.metrics.counter import counter, reset_counters

pytestmark = pytest.mark.tier2_faults

MOUNT = "/mnt/help"
GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "golden"


def faulted_system(*faults, width=100, height=40):
    system = build_system(width=width, height=height)
    plan = FaultPlan(*faults)
    system.ns.unmount(MOUNT)
    system.ns.mount(wrap(system.helpfs.root, plan, base=MOUNT), MOUNT)
    return system, plan


def errors_text(help_app):
    window = help_app.window_by_name(ERRORS)
    return "" if window is None else window.body.string()


class TestFaultMatrix:
    def test_open_refusal_on_window_creation(self):
        system, plan = faulted_system(
            Fault(op="open", path=f"{MOUNT}/new/ctl", at=1))
        h = system.help
        before = set(h.windows)
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert plan.fired == [1]
        assert "[iofault]" in errors_text(h)
        assert set(h.windows) - before <= {h.window_by_name(ERRORS).id}
        assert h.running
        render_screen(h)

    def test_mid_read_fault_on_body(self):
        system, plan = faulted_system(
            Fault(op="read", path=f"{MOUNT}/*/body", at=1))
        w = system.help.new_window("/tmp/x", "hello body\n")
        shell = system.shell("/usr/rob")
        result = shell.run(f"cat {MOUNT}/{w.id}/body")
        assert plan.fired == [1]
        assert result.status != 0
        assert f"'{MOUNT}/{w.id}/body'" in result.stderr
        assert "[iofault]" in result.stderr
        # the server is fine afterwards: the next read succeeds
        assert shell.run(f"cat {MOUNT}/{w.id}/body").stdout == "hello body\n"

    def test_short_read_of_new_window_name(self):
        system, plan = faulted_system(
            Fault(op="read", path=f"{MOUNT}/new/ctl", at=1, short=0))
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert plan.fired == [1]
        # the window was created, but the script lost its name and
        # had to report the resulting null list
        assert errors_text(h) != ""
        assert h.running
        render_screen(h)

    def test_write_fault_on_ctl(self):
        system, plan = faulted_system(
            Fault(op="write", path=f"{MOUNT}/*/ctl", at=1))
        w = system.help.new_window("/tmp/x", "text\n")
        shell = system.shell("/usr/rob")
        result = shell.run(f"echo tag extra > {MOUNT}/{w.id}/ctl")
        assert plan.fired == [1]
        assert result.status != 0
        assert "[iofault]" in result.stderr
        assert "extra" not in w.tag.string()  # the message never landed
        # and the ctl file still works on the next try
        assert shell.run(f"echo tag extra > {MOUNT}/{w.id}/ctl").status == 0
        assert "extra" in w.tag.string()

    def test_close_time_fault_on_ctl(self):
        system, plan = faulted_system(
            Fault(op="close", path=f"{MOUNT}/[0-9]*/ctl", at=1))
        w = system.help.new_window("/tmp/x", "text\n")
        shell = system.shell("/usr/rob")
        result = shell.run(f"echo tag extra > {MOUNT}/{w.id}/ctl")
        assert plan.fired == [1]
        assert result.status != 0
        assert "[iofault]" in result.stderr
        # the line was complete before close, so it was already applied
        assert "extra" in w.tag.string()

    def test_write_fault_on_bodyapp(self):
        system, plan = faulted_system(
            Fault(op="write", path=f"{MOUNT}/*/bodyapp", at=1))
        w = system.help.new_window("/tmp/x", "")
        shell = system.shell("/usr/rob")
        result = shell.run(f"echo appended > {MOUNT}/{w.id}/bodyapp")
        assert plan.fired == [1]
        assert result.status != 0
        assert w.body.string() == ""  # nothing landed
        assert system.help.running


class TestCrashMatrix:
    def test_crash_mid_write_to_body_surfaces_and_unmount_recovers(self):
        system, plan = faulted_system(
            Fault(op="write", path=f"{MOUNT}/*/body", crash=True))
        w = system.help.new_window("/tmp/x", "before\n")
        shell = system.shell("/usr/rob")
        result = shell.run(f"echo replacement > {MOUNT}/{w.id}/body")
        assert plan.fired == [1]
        assert result.status != 0
        assert "[crashed]" in result.stderr
        # the dead server answers nothing until the mount is replaced
        assert shell.run(f"cat {MOUNT}/index").status != 0
        system.ns.unmount(MOUNT)
        system.ns.mount(system.helpfs.root, MOUNT)
        assert shell.run(f"cat {MOUNT}/index").status == 0
        assert system.help.running

    def test_crash_is_the_whole_process_not_one_file(self):
        system, plan = faulted_system(
            Fault(op="read", path=f"{MOUNT}/index", crash=True))
        shell = system.shell("/usr/rob")
        assert shell.run(f"cat {MOUNT}/index").status != 0
        # a different file on the same (dead) server also refuses
        w = next(iter(system.help.windows.values()))
        result = shell.run(f"cat {MOUNT}/{w.id}/body")
        assert result.status != 0
        assert "[crashed]" in result.stderr
        assert plan.injected == 1  # one crash; the rest is deadness

    def test_journal_crash_recovery_through_the_matrix(self):
        """The replaycheck scenario as a tier-2 test: tear the journal
        mid-append, then recover byte-identically from the torn file."""
        from repro.journal import Journal, attach
        from repro.journal.recovery import recover

        system = build_system(width=100, height=40)
        journal = Journal.create(system.ns, "/usr/rob/help.journal")
        attach(system.help, journal, ns=system.ns, snapshot_every=2)
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        pre_crash = render_screen(h, full=True)
        plan = FaultPlan(Fault(op="write", path="*/help.journal",
                               crash=True))
        system.ns.mount(wrap(system.ns.walk("/usr/rob"), plan,
                             base="/usr/rob"), "/usr/rob")
        from repro.fs.errors import Crashed
        with pytest.raises(Crashed):
            h.type_text("lost input")
        system.ns.unmount("/usr/rob")
        fresh = build_system(width=100, height=40)
        report = recover(fresh.help, system.ns.read("/usr/rob/help.journal"))
        assert report.torn
        assert render_screen(fresh.help, full=True) == pre_crash


class TestCountersMatchSchedule:
    def test_injection_and_error_counters_reconcile(self):
        reset_counters("fs.error.")
        reset_counters("fs.fault.")
        system, plan = faulted_system(
            Fault(op="open", path=f"{MOUNT}/new/ctl", at=1),
            Fault(op="read", path=f"{MOUNT}/index", at=1),
            Fault(op="read", path=f"{MOUNT}/index", at=2, short=1))
        shell = system.shell("/usr/rob")
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert shell.run(f"cat {MOUNT}/index").status != 0
        shell.run(f"cat {MOUNT}/index")  # short read: succeeds, truncated
        assert plan.fired == [1, 1, 1]
        assert counter("fs.fault.injected") == 3
        # only the raising rules produced errors; the short read did not
        assert counter("fs.error.iofault") == 2


class TestNoFaultControl:
    def test_empty_plan_is_transparent(self):
        system, plan = faulted_system(width=160, height=60)
        assert render_screen(system.help, footer=False) == \
            (GOLDEN / "boot_160x60.txt").read_text()
        h = system.help
        h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
        assert h.window_by_name("/mail/box/rob/mbox") is not None
        assert plan.injected == 0
        assert errors_text(h) == ""
