"""Unit tests for the ctl message grammar helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.help import Help
from repro.fs import VFS, Namespace
from repro.helpfs.ctl import CtlError, apply_ctl, ctl_status, escape, unescape


@pytest.fixture
def app():
    fs = VFS()
    fs.mkdir("/mnt", parents=True)
    return Help(Namespace(fs))


class TestEscaping:
    def test_unescape_newline_tab_backslash(self):
        assert unescape(r"a\nb\tc\\d") == "a\nb\tc\\d"

    def test_unescape_unknown_escape_passes_char(self):
        assert unescape(r"\q") == "q"

    def test_unescape_trailing_backslash(self):
        assert unescape("a\\") == "a\\"

    def test_escape(self):
        assert escape("a\nb\tc\\d") == r"a\nb\tc\\d"

    @given(st.text(alphabet="ab\n\t\\ ", max_size=30))
    def test_roundtrip(self, s):
        assert unescape(escape(s)) == s


class TestApplyCtl:
    def test_empty_line_ignored(self, app):
        w = app.new_window("/t", "x")
        apply_ctl(app, w, "\n")
        apply_ctl(app, w, "   ")
        assert w.body.string() == "x"

    def test_unknown_verb_raises(self, app):
        w = app.new_window("/t")
        with pytest.raises(CtlError, match="unknown message"):
            apply_ctl(app, w, "zap 1 2")

    def test_missing_args_raises(self, app):
        w = app.new_window("/t")
        with pytest.raises(CtlError, match="missing arguments"):
            apply_ctl(app, w, "delete 1")

    def test_replace_without_text_deletes(self, app):
        w = app.new_window("/t", "abcd")
        apply_ctl(app, w, "replace 1 3")
        assert w.body.string() == "ad"

    def test_select_clamped(self, app):
        w = app.new_window("/t", "ab")
        apply_ctl(app, w, "select 0 999")
        assert (w.body_sel.q0, w.body_sel.q1) == (0, 2)

    def test_show_clamps_to_line_one(self, app):
        w = app.new_window("/t", "a\nb\n")
        apply_ctl(app, w, "show 0")
        assert w.org == 0

    def test_status_format(self, app):
        w = app.new_window("/t", "hello")
        w.mark_dirty()
        fields = ctl_status(w).split()
        assert len(fields) == 6
        assert fields[3] == "1"
