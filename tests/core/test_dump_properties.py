"""Property tests: dump/load is lossless for any session content.

The journal's snapshot records carry an inline :mod:`repro.core.dump`,
so crash recovery is only as faithful as the dump round trip — these
properties pin that down over adversarial bodies and tags (newlines,
backslashes, the dump format's own keywords).
"""

from hypothesis import given, settings, strategies as st

from repro import build_system
from repro.core.dump import dump, load

# Adversarial but line-representable text: every byte class the dump
# format must escape or frame, including its own keywords at line
# starts ("window ", "tag ", "body ") and counted-block confusers.
bodies = st.text(
    alphabet=st.sampled_from(list("ab \\\nwindowtagbody-012")),
    max_size=80)
tags = st.text(
    alphabet=st.sampled_from(list("ab \\windowtagbody-012 |")),
    max_size=40)


def window_texts(help_app):
    return sorted((w.name(), w.body.string(), w.dirty)
                  for w in help_app.windows.values())


class TestDumpRoundTrip:
    @given(st.lists(bodies, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_dirty_bodies_survive(self, texts):
        system = build_system(width=120, height=40)
        h = system.help
        for i, text in enumerate(texts):
            w = h.new_window(f"/tmp/w{i}", text)
            w.dirty = True
        before = window_texts(h)
        load(h, dump(h))
        assert window_texts(h) == before

    @given(st.lists(st.tuples(bodies, tags), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_dump_load_dump_is_a_fixed_point(self, windows):
        system = build_system(width=120, height=40)
        h = system.help
        for i, (body, tag_suffix) in enumerate(windows):
            w = h.new_window(f"/tmp/w{i}", body)
            w.tag.set_string(w.tag.string() + tag_suffix)
            w.dirty = True
        first = dump(h)
        load(h, first)
        assert dump(h) == first

    @given(bodies)
    @settings(max_examples=40, deadline=None)
    def test_unnamed_window_body_survives(self, body):
        system = build_system(width=120, height=40)
        h = system.help
        h.new_window("", body)
        before = window_texts(h)
        load(h, dump(h))
        assert window_texts(h) == before
