"""Unit tests for windows (tag + body)."""

from repro.core.window import PUT_WORD, Subwindow, Window


def make(name="/usr/rob/src/help/help.c", body="int n;\nint m;\n"):
    return Window(1, name, body)


class TestNaming:
    def test_tag_has_conventional_words(self):
        w = make()
        assert w.tag.string() == "/usr/rob/src/help/help.c Close! Get!"

    def test_name_is_first_tag_word(self):
        assert make().name() == "/usr/rob/src/help/help.c"

    def test_empty_tag(self):
        w = Window(2, "", tag_suffix="")
        assert w.name() == ""

    def test_directory_window(self):
        w = make(name="/usr/rob/src/help/")
        assert w.is_directory()
        assert w.directory() == "/usr/rob/src/help"

    def test_file_window_context_is_parent(self):
        assert make().directory() == "/usr/rob/src/help"

    def test_non_path_name_context_is_root(self):
        w = Window(3, "help/Boot", tag_suffix="Exit")
        assert w.directory() == "/"

    def test_set_name_rewrites_tag(self):
        w = make()
        w.set_name("/tmp/other.c")
        assert w.tag.string() == "/tmp/other.c Close! Get!"

    def test_set_name_with_extra_words(self):
        w = make()
        w.set_name("/mail/box/rob/mbox", extra="/bin/help/mail")
        assert w.tag.string() == "/mail/box/rob/mbox /bin/help/mail Close! Get!"


class TestDirty:
    def test_typing_marks_dirty_and_adds_put(self):
        w = make()
        w.type_text(Subwindow.BODY, "x")
        assert w.dirty
        assert PUT_WORD in w.tag.string().split()

    def test_put_word_goes_after_name(self):
        w = make()
        w.mark_dirty()
        assert w.tag.string() == "/usr/rob/src/help/help.c Put! Close! Get!"

    def test_mark_clean_removes_put(self):
        w = make()
        w.mark_dirty()
        w.mark_clean()
        assert w.tag.string() == "/usr/rob/src/help/help.c Close! Get!"
        assert not w.dirty

    def test_double_dirty_one_put(self):
        w = make()
        w.mark_dirty()
        w.mark_dirty()
        assert w.tag.string().split().count(PUT_WORD) == 1

    def test_clean_when_clean_is_noop(self):
        w = make()
        w.mark_clean()
        assert w.tag.string() == "/usr/rob/src/help/help.c Close! Get!"

    def test_typing_in_tag_does_not_dirty(self):
        w = make()
        w.type_text(Subwindow.TAG, "x")
        assert not w.dirty

    def test_set_name_on_dirty_window_keeps_put(self):
        w = make()
        w.mark_dirty()
        w.set_name("/tmp/f.c")
        assert PUT_WORD in w.tag.string().split()


class TestEditing:
    def test_type_replaces_selection(self):
        w = make(body="hello world")
        w.body_sel.set(0, 5)
        w.type_text(Subwindow.BODY, "goodbye")
        assert w.body.string() == "goodbye world"
        assert (w.body_sel.q0, w.body_sel.q1) == (7, 7)  # caret after

    def test_newline_is_just_a_character(self):
        w = make(body="")
        w.type_text(Subwindow.BODY, "line\n")
        assert w.body.string() == "line\n"

    def test_delete_selection_returns_text(self):
        w = make(body="abcdef")
        w.body_sel.set(1, 4)
        assert w.delete_selection(Subwindow.BODY) == "bcd"
        assert w.body.string() == "aef"
        assert w.dirty

    def test_delete_empty_selection_not_dirty(self):
        w = make(body="abc")
        w.body_sel.set(1, 1)
        assert w.delete_selection(Subwindow.BODY) == ""
        assert not w.dirty

    def test_insert_at_selection_selects_pasted(self):
        w = make(body="ab")
        w.body_sel.set(1, 2)
        w.insert_at_selection(Subwindow.BODY, "XYZ")
        assert w.body.string() == "aXYZ"
        assert (w.body_sel.q0, w.body_sel.q1) == (1, 4)

    def test_append(self):
        w = make(body="start\n")
        w.append("more\n")
        assert w.body.string() == "start\nmore\n"

    def test_replace_body_resets_state(self):
        w = make(body="old")
        w.body_sel.set(1, 2)
        w.org = 2
        w.replace_body("brand new")
        assert w.body.string() == "brand new"
        assert w.org == 0
        assert (w.body_sel.q0, w.body_sel.q1) == (0, 0)
        assert not w.dirty


class TestShowLine:
    def test_show_line_scrolls_and_selects(self):
        w = make(body="one\ntwo\nthree\nfour\n")
        w.show_line(3)
        assert w.org == 8
        assert w.body.slice(w.body_sel.q0, w.body_sel.q1) == "three"

    def test_show_line_one(self):
        w = make(body="a\nb\n")
        w.show_line(1)
        assert w.org == 0
        assert w.body.slice(w.body_sel.q0, w.body_sel.q1) == "a"

    def test_show_line_past_end_clamps(self):
        w = make(body="a\nb")
        w.show_line(99)
        assert w.org == len(w.body)
