"""Unit and property tests for character-cell frames."""

import pytest
from hypothesis import given, strategies as st

from repro.core.frame import Frame, Rect


class TestRect:
    def test_dimensions(self):
        r = Rect(2, 3, 10, 8)
        assert r.width == 8
        assert r.height == 5
        assert not r.empty

    def test_empty(self):
        assert Rect(5, 5, 5, 9).empty
        assert Rect(0, 0, 3, 0).empty

    def test_negative_extent_clamps(self):
        r = Rect(5, 5, 2, 2)
        assert r.width == 0 and r.height == 0

    def test_contains(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains(0, 0)
        assert r.contains(3, 3)
        assert not r.contains(4, 0)
        assert not r.contains(0, -1)

    def test_intersects(self):
        a = Rect(0, 0, 4, 4)
        assert a.intersects(Rect(3, 3, 6, 6))
        assert not a.intersects(Rect(4, 0, 6, 4))  # shares only an edge

    def test_inset_rows(self):
        r = Rect(0, 2, 5, 10).inset_rows(top=1, bottom=2)
        assert (r.y0, r.y1) == (3, 8)


class TestLayout:
    def test_simple_lines(self):
        f = Frame(10, 5)
        lines = f.layout("ab\ncd\n")
        assert [(ln.start, ln.end, ln.hard) for ln in lines] == [
            (0, 2, True), (3, 5, True), (6, 6, True)]

    def test_no_trailing_newline(self):
        f = Frame(10, 5)
        lines = f.layout("ab\ncd")
        assert [(ln.start, ln.end) for ln in lines] == [(0, 2), (3, 5)]

    def test_wrapping(self):
        f = Frame(3, 5)
        lines = f.layout("abcdefg")
        assert [(ln.start, ln.end, ln.hard) for ln in lines] == [
            (0, 3, False), (3, 6, False), (6, 7, True)]

    def test_height_caps_layout(self):
        f = Frame(10, 2)
        lines = f.layout("a\nb\nc\nd\n")
        assert len(lines) == 2

    def test_empty_text_has_one_row(self):
        f = Frame(10, 3)
        lines = f.layout("")
        assert len(lines) == 1
        assert (lines[0].start, lines[0].end) == (0, 0)

    def test_origin_offsets(self):
        f = Frame(10, 5)
        lines = f.layout("aa\nbb\ncc", org=3)
        assert [(ln.start, ln.end) for ln in lines] == [(3, 5), (6, 8)]

    def test_zero_height(self):
        f = Frame(10, 0)
        assert f.layout("abc") == []

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Frame(0, 5)
        with pytest.raises(ValueError):
            Frame(5, -1)

    def test_exact_width_line_no_spurious_wrap(self):
        f = Frame(3, 5)
        lines = f.layout("abc")
        assert [(ln.start, ln.end, ln.hard) for ln in lines] == [(0, 3, True)]

    def test_exact_width_then_newline(self):
        f = Frame(3, 5)
        lines = f.layout("abc\nd")
        assert (lines[0].start, lines[0].end, lines[0].hard) == (0, 3, True)
        assert (lines[1].start, lines[1].end) == (4, 5)


class TestVisibleSpan:
    def test_span_all_visible(self):
        f = Frame(10, 5)
        assert f.visible_span("ab\ncd") == (0, 5)

    def test_span_clipped_by_height(self):
        f = Frame(10, 1)
        org, end = f.visible_span("ab\ncd")
        assert (org, end) == (0, 3)  # first line plus its newline

    def test_rows_used(self):
        f = Frame(3, 10)
        assert f.rows_used("abcdefg") == 3
        assert f.rows_used("") == 1


class TestPointMaps:
    def test_char_of_point_basic(self):
        f = Frame(10, 5)
        text = "hello\nworld"
        assert f.char_of_point(text, 0, 0, 0) == 0
        assert f.char_of_point(text, 0, 0, 3) == 3
        assert f.char_of_point(text, 0, 1, 2) == 8

    def test_char_of_point_past_line_end_clamps(self):
        f = Frame(10, 5)
        assert f.char_of_point("hi\nyo", 0, 0, 9) == 2

    def test_char_of_point_below_text_clamps(self):
        f = Frame(10, 5)
        assert f.char_of_point("hi", 0, 4, 0) == 2

    def test_point_of_char_roundtrip(self):
        f = Frame(10, 5)
        text = "hello\nworld"
        for pos in range(len(text) + 1):
            pt = f.point_of_char(text, 0, pos)
            if pt is None:
                continue
            row, col = pt
            assert f.char_of_point(text, 0, row, col) == pos

    def test_point_of_char_not_visible(self):
        f = Frame(10, 1)
        assert f.point_of_char("aa\nbb", 0, 4) is None

    def test_point_of_char_with_origin(self):
        f = Frame(10, 5)
        assert f.point_of_char("aa\nbb", 3, 4) == (0, 1)

    @given(st.text(alphabet="ab \n", max_size=60), st.integers(1, 8),
           st.integers(0, 10), st.integers(0, 10))
    def test_char_of_point_always_in_bounds(self, text, width, row, col):
        f = Frame(width, 6)
        pos = f.char_of_point(text, 0, row, col)
        assert 0 <= pos <= len(text)


class TestScrolling:
    def test_origin_for_line(self):
        f = Frame(10, 5)
        text = "one\ntwo\nthree\n"
        assert f.origin_for_line(text, 1) == 0
        assert f.origin_for_line(text, 2) == 4
        assert f.origin_for_line(text, 3) == 8

    def test_origin_for_line_past_end(self):
        f = Frame(10, 5)
        assert f.origin_for_line("a\nb", 99) == 2

    def test_scroll_origins(self):
        f = Frame(10, 5)
        assert f.scroll_origins("a\nbb\nc") == [0, 2, 5]

    def test_scroll_down(self):
        f = Frame(10, 2)
        text = "a\nb\nc\nd"
        org = f.scroll(text, 0, 1)
        assert org == 2
        org = f.scroll(text, org, 2)
        assert org == 6

    def test_scroll_down_clamps_at_end(self):
        f = Frame(10, 2)
        assert f.scroll("ab", 0, 5) <= 2

    def test_scroll_up(self):
        f = Frame(10, 2)
        text = "a\nb\nc\nd"
        assert f.scroll(text, 6, -1) == 4
        assert f.scroll(text, 6, -3) == 0

    def test_scroll_up_at_top(self):
        f = Frame(10, 2)
        assert f.scroll("a\nb", 0, -1) == 0

    def test_scroll_zero(self):
        f = Frame(10, 2)
        assert f.scroll("a\nb", 2, 0) == 2

    def test_scroll_up_through_wrapped_line(self):
        f = Frame(3, 4)
        text = "abcdefgh\nz"  # wraps into rows at 0, 3, 6
        assert f.scroll(text, 9, -1) == 6
        assert f.scroll(text, 9, -2) == 3
        assert f.scroll(text, 9, -3) == 0

    @given(st.text(alphabet="ab\n", max_size=50), st.integers(1, 6))
    def test_scroll_down_then_up_returns_home(self, text, width):
        f = Frame(width, 3)
        down = f.scroll(text, 0, 2)
        up = f.scroll(text, down, -2)
        again = f.scroll(text, up, 2)
        assert down == again


class TestLayoutProperties:
    @given(st.text(alphabet="abc \n", max_size=120), st.integers(1, 9),
           st.integers(1, 8))
    def test_layout_partitions_text(self, text, width, height):
        """Display lines tile the text from the origin: each row starts
        where the previous ended (skipping its newline), nothing is
        skipped, and nothing shown twice."""
        f = Frame(width, height)
        lines = f.layout(text, 0)
        assert lines[0].start == 0
        for prev, cur in zip(lines, lines[1:]):
            expected = prev.end + (1 if prev.hard else 0)
            assert cur.start == expected
        for line in lines:
            assert 0 <= line.start <= line.end <= len(text)
            assert line.end - line.start <= width
            shown = text[line.start:line.end]
            assert "\n" not in shown

    @given(st.text(alphabet="ab\n", max_size=80), st.integers(1, 6))
    def test_rows_never_exceed_height(self, text, width):
        f = Frame(width, 4)
        assert len(f.layout(text, 0)) <= 4

    @given(st.text(alphabet="ab\n", max_size=80), st.integers(1, 6),
           st.integers(0, 80))
    def test_visible_span_consistent(self, text, width, org):
        org = min(org, len(text))
        f = Frame(width, 5)
        start, end = f.visible_span(text, org)
        assert start == org <= end <= len(text)
