"""Tests for the Help application: events, gestures, boot, windows."""

import pytest

from repro.core.events import Button
from repro.core.window import Subwindow


def cell_of(app, window, pos, sub=Subwindow.BODY):
    """Screen cell (x, y) showing text offset *pos* of *window*."""
    column = app.screen.column_of(window)
    rect = column.win_rect(window)
    if sub is Subwindow.TAG:
        return (column.body_x0 + pos, rect.y0)
    frame = column.body_frame(window)
    row, col = frame.point_of_char(window.body.string(), window.org, pos)
    return (column.body_x0 + col, rect.y0 + 1 + row)


class TestBoot:
    def test_boot_creates_boot_window(self, app):
        app.boot()
        boot = app.window_by_name("help/Boot")
        assert boot is not None
        assert "Exit" in boot.tag.string()

    def test_boot_loads_tools_in_right_column(self, app):
        app.boot()
        for tool in ("edit", "cbr", "db", "mail"):
            w = app.window_by_name(f"/help/{tool}/stf")
            assert w is not None, tool
            assert app.screen.column_of(w) is app.screen.columns[-1]

    def test_tool_window_is_plain_file(self, app):
        """A tool window is 'really just a window on a plain file'."""
        app.boot()
        w = app.window_by_name("/help/mail/stf")
        assert w.body.string() == app.ns.read("/help/mail/stf")

    def test_boot_without_tools_dir(self, world):
        from repro.core.help import Help
        world.remove("/help/edit/stf")
        world.remove("/help/edit")
        app = Help(world, tools_dir="/nonexistent")
        app.boot()  # no error
        assert app.window_by_name("help/Boot") is not None


class TestMouseSelection:
    def test_left_sweep_selects(self, app):
        w = app.new_window("/tmp/f", "hello world")
        x0, y0 = cell_of(app, w, 0)
        x1, y1 = cell_of(app, w, 5)
        app.sweep(x0, y0, x1, y1)
        assert app.selected_text() == "hello"
        assert app.current == (w, Subwindow.BODY)

    def test_left_click_null_selection(self, app):
        w = app.new_window("/tmp/f", "hello")
        app.left_click(*cell_of(app, w, 2))
        sel = w.body_sel
        assert (sel.q0, sel.q1) == (2, 2)

    def test_backwards_sweep_normalizes(self, app):
        w = app.new_window("/tmp/f", "hello")
        x1, y1 = cell_of(app, w, 4)
        x0, y0 = cell_of(app, w, 1)
        app.sweep(x1, y1, x0, y0)
        assert app.selected_text() == "ell"

    def test_tag_selection(self, app):
        w = app.new_window("/tmp/f", "body")
        x, y = cell_of(app, w, 0, Subwindow.TAG)
        app.sweep(x, y, x + 4, y)
        assert app.current == (w, Subwindow.TAG)
        assert app.selected_text() == "/tmp"

    def test_each_subwindow_keeps_own_selection(self, app):
        w = app.new_window("/tmp/f", "body text")
        app.select(w, 0, 4)
        app.select(w, 1, 3, Subwindow.TAG)
        assert (w.body_sel.q0, w.body_sel.q1) == (0, 4)
        assert (w.tag_sel.q0, w.tag_sel.q1) == (1, 3)
        assert app.current == (w, Subwindow.TAG)

    def test_selection_in_empty_area_is_ignored(self, app):
        app.left_click(50, 20)
        assert app.current is None


class TestMouseExecution:
    def test_middle_click_executes_word(self, app):
        w = app.new_window("/tmp/f", "some text to Cut away")
        app.select(w, 0, 4)
        app.middle_click(*cell_of(app, w, 14))  # inside "Cut"
        assert w.body.string() == " text to Cut away"
        assert app.snarf == "some"

    def test_middle_sweep_executes_exact_text(self, app):
        w = app.new_window("/tmp/f", "Open /usr/rob/lib/profile\n")
        x0, y0 = cell_of(app, w, 0)
        x1, y1 = cell_of(app, w, 25)
        app.sweep(x0, y0, x1, y1, Button.MIDDLE)
        assert app.window_by_name("/usr/rob/lib/profile") is not None

    def test_typing_then_two_clicks_opens_file(self, app):
        """The Figure 3 interaction, driven entirely by events."""
        w = app.new_window("/tmp/scratch", "")
        app.mouse_move(*cell_of(app, w, 0))
        app.type_text("/usr/rob/src/help/help.c")
        # the caret is a null selection at the end of the typed name
        app.middle_click(*cell_of(app, w, 3))  # oops — need Open; type it
        # instead: execute by typing Open in the same window and clicking it
        w2 = app.new_window("/tmp/cmds", "Open\n")
        app.mouse_move(*cell_of(app, w, 10))
        app.left_click(*cell_of(app, w, 24))
        app.middle_click(*cell_of(app, w2, 1))
        assert app.window_by_name("/usr/rob/src/help/help.c") is not None


class TestChords:
    def test_chord_cut(self, app):
        w = app.new_window("/tmp/f", "chop this text")
        x0, y0 = cell_of(app, w, 0)
        x1, y1 = cell_of(app, w, 4)
        app.mouse_press(x0, y0, Button.LEFT)
        app.mouse_drag(x1, y1)
        app.mouse_press(x1, y1, Button.MIDDLE)
        app.mouse_release(x1, y1, Button.MIDDLE)
        app.mouse_release(x1, y1, Button.LEFT)
        assert w.body.string() == " this text"
        assert app.snarf == "chop"

    def test_chord_paste(self, app):
        w = app.new_window("/tmp/f", "ab")
        app.snarf = "XY"
        x, y = cell_of(app, w, 1)
        app.mouse_press(x, y, Button.LEFT)
        app.mouse_press(x, y, Button.RIGHT)
        app.mouse_release(x, y, Button.RIGHT)
        app.mouse_release(x, y, Button.LEFT)
        assert w.body.string() == "aXYb"

    def test_cut_and_paste_chord_snarfs(self, app):
        """Cut then paste, left held: text ends up in the buffer and back."""
        w = app.new_window("/tmp/f", "snarf me")
        x0, y0 = cell_of(app, w, 0)
        x1, y1 = cell_of(app, w, 5)
        app.mouse_press(x0, y0, Button.LEFT)
        app.mouse_drag(x1, y1)
        app.mouse_press(x1, y1, Button.MIDDLE)
        app.mouse_release(x1, y1, Button.MIDDLE)
        app.mouse_press(x1, y1, Button.RIGHT)
        app.mouse_release(x1, y1, Button.RIGHT)
        app.mouse_release(x1, y1, Button.LEFT)
        assert w.body.string() == "snarf me"
        assert app.snarf == "snarf"


class TestTyping:
    def test_typing_goes_under_mouse(self, app):
        w = app.new_window("/tmp/f", "")
        app.mouse_move(*cell_of(app, w, 0))
        app.type_text("hi there")
        assert w.body.string() == "hi there"

    def test_typing_replaces_selection(self, app):
        w = app.new_window("/tmp/f", "old text")
        x0, y0 = cell_of(app, w, 0)
        x1, y1 = cell_of(app, w, 3)
        app.sweep(x0, y0, x1, y1)
        app.mouse_move(x1, y1)
        app.type_text("new")
        assert w.body.string() == "new text"

    def test_typing_nowhere_is_dropped(self, app):
        app.mouse_move(50, 30)
        app.type_text("lost")  # no window, no current selection
        assert app.current is None

    def test_typing_counts_keystrokes(self, app):
        w = app.new_window("/tmp/f", "")
        app.mouse_move(*cell_of(app, w, 0))
        app.stats.reset()
        app.type_text("abc")
        assert app.stats.keystrokes == 3
        assert app.stats.touched_keyboard


class TestWindowGestures:
    def test_right_drag_moves_window(self, app):
        w = app.new_window("/tmp/f", "x", column=app.screen.columns[0])
        x, y = cell_of(app, w, 0, Subwindow.TAG)
        app.right_drag(x, y, 60, 10)
        assert app.screen.column_of(w) is app.screen.columns[1]

    def test_right_drag_from_body_does_nothing(self, app):
        w = app.new_window("/tmp/f", "body", column=app.screen.columns[0])
        x, y = cell_of(app, w, 0)
        app.right_drag(x, y, 60, 10)
        assert app.screen.column_of(w) is app.screen.columns[0]

    def test_tab_click_reveals_window(self, app):
        col = app.screen.columns[0]
        lines = "".join(f"l{i}\n" for i in range(60))
        wins = [app.new_window(f"/tmp/w{i}", lines, column=col)
                for i in range(6)]
        hidden = next(w for w in wins if w.hidden)
        order = col.tab_order()
        tab_y = col.rect.y0 + order.index(hidden)
        app.left_click(col.rect.x0, tab_y)
        assert not hidden.hidden

    def test_header_click_expands_column(self, app):
        x0 = app.screen.columns[0].rect.x0
        app.left_click(x0, 0)
        assert app.screen.columns[0].rect.width == 75

    def test_scroll_click_in_strip(self, app):
        col = app.screen.columns[0]
        body = "".join(f"line{i}\n" for i in range(100))
        w = app.new_window("/tmp/f", body, column=col)
        rect = col.win_rect(w)
        strip_y = rect.y0 + 5
        app.middle_click(col.rect.x0, strip_y)  # scroll toward the end
        assert w.org > 0
        app.left_click(col.rect.x0, strip_y)  # scroll back up
        assert w.org == 0


class TestErrorsWindow:
    def test_created_once(self, app):
        app.post_error("one\n")
        app.post_error("two\n")
        errors = [w for w in app.windows.values() if w.name() == "Errors"]
        assert len(errors) == 1
        assert errors[0].body.string() == "one\ntwo\n"

    def test_empty_post_ignored(self, app):
        app.post_error("")
        assert app.window_by_name("Errors") is None


class TestStats:
    def test_presses_counted(self, app):
        w = app.new_window("/tmp/f", "word")
        app.stats.reset()
        app.left_click(*cell_of(app, w, 1))
        app.middle_click(*cell_of(app, w, 1))
        assert app.stats.button_presses == 2
        assert app.stats.middle_clicks == 1

    def test_zero_keystroke_session(self, app):
        w = app.new_window("/tmp/f", "some words here")
        app.stats.reset()
        app.left_click(*cell_of(app, w, 1))
        app.middle_click(*cell_of(app, w, 6))
        assert not app.stats.touched_keyboard


class TestLazyImports:
    def test_core_reexports(self):
        import repro.core as core
        assert core.Help.__name__ == "Help"
        assert core.Button.LEFT.value == 1
        assert callable(core.render_screen)
        with pytest.raises(AttributeError):
            core.no_such_thing

    def test_tools_reexports(self):
        import repro.tools as tools
        assert callable(tools.build_system)
        with pytest.raises(AttributeError):
            tools.nothing_here

    def test_package_version(self):
        import repro
        assert repro.__version__


class TestResizeThroughHelp:
    def test_resize_keeps_session_usable(self, app):
        w = app.new_window("/tmp/f", "keep me visible\n")
        app.resize(140, 50)
        column = app.screen.column_of(w)
        rect = column.win_rect(w)
        assert rect is not None
        hit = app.screen.hit(column.body_x0, rect.y0 + 1)
        assert hit.window is w
