"""Unit tests for the built-in commands, driven programmatically."""

from repro.core.window import Subwindow


def open_file(app, path):
    return app.open_path(path)


class TestCutPasteSnarf:
    def test_cut_removes_and_remembers(self, app):
        w = app.new_window("/tmp/f", "hello world")
        app.select(w, 0, 5)
        app.execute_text(w, "Cut")
        assert w.body.string() == " world"
        assert app.snarf == "hello"

    def test_cut_empty_selection_keeps_buffer(self, app):
        w = app.new_window("/tmp/f", "abc")
        app.snarf = "kept"
        app.point_at(w, 1)
        app.execute_text(w, "Cut")
        assert app.snarf == "kept"
        assert w.body.string() == "abc"

    def test_snarf_copies_without_deleting(self, app):
        w = app.new_window("/tmp/f", "hello")
        app.select(w, 0, 5)
        app.execute_text(w, "Snarf")
        assert w.body.string() == "hello"
        assert app.snarf == "hello"

    def test_paste_replaces_selection(self, app):
        w = app.new_window("/tmp/f", "hello world")
        app.snarf = "XY"
        app.select(w, 0, 5)
        app.execute_text(w, "Paste")
        assert w.body.string() == "XY world"

    def test_paste_at_point(self, app):
        w = app.new_window("/tmp/f", "ab")
        app.snarf = "-"
        app.point_at(w, 1)
        app.execute_text(w, "Paste")
        assert w.body.string() == "a-b"

    def test_cut_then_paste_roundtrip(self, app):
        w = app.new_window("/tmp/f", "one two three")
        app.select(w, 4, 8)
        app.execute_text(w, "Cut")
        app.point_at(w, 0)
        app.execute_text(w, "Paste")
        assert w.body.string() == "two one three"

    def test_command_word_location_is_irrelevant(self, app):
        """Cut may be executed from any window (e.g. the edit tool)."""
        target = app.new_window("/tmp/f", "delenda")
        tool = app.new_window("/help/edit/stf", "Cut Paste Snarf\n")
        app.select(target, 0, 7)
        app.execute_text(tool, "Cut")
        assert target.body.string() == ""
        assert app.snarf == "delenda"


class TestOpen:
    def test_open_with_argument(self, app):
        app.execute_text(app.new_window(""), "Open /usr/rob/lib/profile")
        w = app.window_by_name("/usr/rob/lib/profile")
        assert w is not None
        assert "bind -c" in w.body.string()

    def test_open_null_selection_in_filename(self, app):
        src = open_file(app, "/usr/rob/src/help/help.c")
        pos = src.body.string().index("dat.h") + 2
        app.point_at(src, pos)
        app.execute_text(src, "Open")
        assert app.window_by_name("/usr/rob/src/help/dat.h") is not None

    def test_open_relative_uses_tag_directory(self, app):
        src = open_file(app, "/usr/rob/src/help/help.c")
        app.select(src, *src.body.find("errs.c")) if src.body.find("errs.c") \
            else app.select(src, 0, 0)
        # select the literal name "file.c" typed into the body
        src.body.insert(0, "file.c ")
        app.select(src, 0, 6)
        app.execute_text(src, "Open")
        assert app.window_by_name("/usr/rob/src/help/file.c") is not None

    def test_open_directory_lists_with_slash(self, app):
        w = app.new_window("")
        app.execute_text(w, "Open /usr/rob/src/help")
        dir_w = app.window_by_name("/usr/rob/src/help/")
        assert dir_w is not None
        body = dir_w.body.string()
        assert "help.c\n" in body
        assert "dat.h\n" in body

    def test_open_line_number(self, app):
        w = app.new_window("")
        app.execute_text(w, "Open /usr/rob/src/help/help.c:6")
        src = app.window_by_name("/usr/rob/src/help/help.c")
        sel = src.body.slice(src.body_sel.q0, src.body_sel.q1)
        assert sel == "int n = 0;"
        assert src.body.line_of(src.org) == 6

    def test_open_existing_reuses_window(self, app):
        w1 = open_file(app, "/usr/rob/src/help/help.c")
        app.execute_text(app.new_window(""), "Open /usr/rob/src/help/help.c")
        windows = [w for w in app.windows.values()
                   if w.name() == "/usr/rob/src/help/help.c"]
        assert windows == [w1]

    def test_open_missing_reports_error(self, app):
        app.execute_text(app.new_window(""), "Open /no/such/file")
        errors = app.window_by_name("Errors")
        assert errors is not None
        assert "does not exist" in errors.body.string()

    def test_open_nothing_reports_error(self, app):
        w = app.new_window("", "   ")
        app.point_at(w, 1)
        app.execute_text(w, "Open")
        errors = app.window_by_name("Errors")
        assert "no file name" in errors.body.string()

    def test_open_dir_window_relative(self, app):
        """Pointing at an entry in a directory window opens it there."""
        w = app.new_window("")
        app.execute_text(w, "Open /usr/rob/src/help")
        dir_w = app.window_by_name("/usr/rob/src/help/")
        pos = dir_w.body.string().index("errs.c") + 1
        app.point_at(dir_w, pos)
        app.execute_text(dir_w, "Open")
        assert app.window_by_name("/usr/rob/src/help/errs.c") is not None


class TestWindowOps:
    def test_new_creates_empty_window(self, app):
        w = app.new_window("/tmp/f")
        before = len(app.windows)
        app.execute_text(w, "New")
        assert len(app.windows) == before + 1

    def test_close_removes_window(self, app):
        w = app.new_window("/tmp/f", "x")
        app.execute_text(w, "Close!")
        assert w.id not in app.windows
        assert app.screen.column_of(w) is None

    def test_close_applies_to_executing_window(self, app):
        """Close! in window A's tag never touches window B."""
        a = app.new_window("/tmp/a")
        b = app.new_window("/tmp/b")
        app.select(b, 0, 0)  # current selection in b
        app.execute_text(a, "Close!", Subwindow.TAG)
        assert a.id not in app.windows
        assert b.id in app.windows

    def test_put_writes_file(self, app):
        w = open_file(app, "/usr/rob/src/help/errs.c")
        w.replace_body("fixed\n", dirty=True)
        app.execute_text(w, "Put!")
        assert app.ns.read("/usr/rob/src/help/errs.c") == "fixed\n"
        assert not w.dirty
        assert "Put!" not in w.tag.string()

    def test_put_on_unnamed_window_errors(self, app):
        w = app.new_window("", "text")
        app.execute_text(w, "Put!")
        assert "no plain file name" in app.window_by_name("Errors").body.string()

    def test_get_reloads_file(self, app):
        w = open_file(app, "/usr/rob/src/help/errs.c")
        w.replace_body("scratch", dirty=True)
        app.execute_text(w, "Get!")
        assert "void errs" in w.body.string()
        assert not w.dirty

    def test_get_relists_directory(self, app):
        w = app.new_window("")
        app.execute_text(w, "Open /usr/rob/src/help")
        dir_w = app.window_by_name("/usr/rob/src/help/")
        app.ns.write("/usr/rob/src/help/new.c", "")
        app.execute_text(dir_w, "Get!")
        assert "new.c\n" in dir_w.body.string()

    def test_write_targets_current_selection(self, app):
        w = open_file(app, "/usr/rob/src/help/errs.c")
        w.replace_body("written\n", dirty=True)
        app.point_at(w, 0)
        tool = app.new_window("/help/edit/stf", "Write\n")
        app.execute_text(tool, "Write")
        assert app.ns.read("/usr/rob/src/help/errs.c") == "written\n"

    def test_exit_stops_session(self, app):
        w = app.new_window("help/Boot", tag_suffix="Exit")
        app.execute_text(w, "Exit", Subwindow.TAG)
        assert not app.running


class TestSearch:
    def test_text_finds_literal(self, app):
        w = app.new_window("/tmp/f", "alpha beta gamma beta")
        app.point_at(w, 0)
        app.execute_text(w, "Text beta")
        sel = w.body.slice(w.body_sel.q0, w.body_sel.q1)
        assert sel == "beta"
        assert w.body_sel.q0 == 6

    def test_text_advances_and_wraps(self, app):
        w = app.new_window("/tmp/f", "x ab x ab")
        app.point_at(w, 0)
        app.execute_text(w, "Text ab")
        first = w.body_sel.q0
        app.execute_text(w, "Text ab")
        second = w.body_sel.q0
        app.execute_text(w, "Text ab")
        assert first == 2 and second == 7
        assert w.body_sel.q0 == first  # wrapped around

    def test_pattern_regexp(self, app):
        w = app.new_window("/tmp/f", "int n42 = 0;")
        app.point_at(w, 0)
        app.execute_text(w, "Pattern n[0-9]+")
        assert w.body.slice(w.body_sel.q0, w.body_sel.q1) == "n42"

    def test_search_uses_selection_when_no_arg(self, app):
        w = app.new_window("/tmp/f", "word more word")
        app.select(w, 0, 4)  # selects the first "word"
        app.execute_text(w, "Text")
        assert w.body_sel.q0 == 10

    def test_search_not_found(self, app):
        w = app.new_window("/tmp/f", "abc")
        app.point_at(w, 0)
        app.execute_text(w, "Text zebra")
        assert "not found" in app.window_by_name("Errors").body.string()

    def test_search_nothing_to_search(self, app):
        w = app.new_window("/tmp/f", "abc")
        app.point_at(w, 0)
        app.execute_text(w, "Text")
        assert "nothing to search" in app.window_by_name("Errors").body.string()


class TestUndoRedo:
    def test_undo_builtin(self, app):
        w = app.new_window("/tmp/f", "keep")
        app.select(w, 0, 4)
        app.execute_text(w, "Cut")
        app.execute_text(w, "Undo")
        assert w.body.string() == "keep"

    def test_redo_builtin(self, app):
        w = app.new_window("/tmp/f", "keep")
        app.select(w, 0, 4)
        app.execute_text(w, "Cut")
        app.execute_text(w, "Undo")
        app.execute_text(w, "Redo")
        assert w.body.string() == ""

    def test_undo_nothing(self, app):
        w = app.new_window("/tmp/f", "")
        app.point_at(w, 0)
        app.execute_text(w, "Undo")
        assert "nothing to undo" in app.window_by_name("Errors").body.string()
