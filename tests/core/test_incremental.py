"""The incremental display pipeline must be invisible.

Three layers of caching sit between an edit and the screen — the
maintained newline index, the memoized bounded-slice layout, and the
damage-tracked canvas — and each must produce byte-identical results
to the from-scratch computation it replaces.  These tests drive
arbitrary interleaved edit/undo/redo/scroll sequences and compare the
cached answers against uncached reference computations at every step.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import build_system, render_screen
from repro.core.frame import Frame
from repro.core.text import Text
from repro.metrics.counter import counter


# -- op sequences over a Text document --------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 200),
                  st.text(alphabet="ab c\nd\n", max_size=8)),
        st.tuples(st.just("delete"), st.integers(0, 200), st.integers(0, 200)),
        st.tuples(st.just("undo"), st.just(0), st.just(0)),
        st.tuples(st.just("redo"), st.just(0), st.just(0)),
    ),
    max_size=30,
)


def _apply(doc: Text, op) -> None:
    kind, a, b = op
    if kind == "insert":
        doc.insert(min(a, len(doc)), b)
    elif kind == "delete":
        lo, hi = sorted((min(a, len(doc)), min(b, len(doc))))
        doc.delete(lo, hi)
    elif kind == "undo":
        doc.undo()
    else:
        doc.redo()


class TestNewlineIndex:
    @given(_ops)
    @settings(max_examples=120, deadline=None)
    def test_line_arithmetic_matches_string_scan(self, ops):
        doc = Text("seed\ntext\n")
        for op in ops:
            _apply(doc, op)
            s = doc.string()
            assert doc.nlines() == (
                (s.count("\n") + (0 if s.endswith("\n") else 1)) if s else 0)
            for pos in {0, 1, len(s) // 2, len(s)}:
                assert doc.line_of(pos) == s[:min(pos, len(s))].count("\n") + 1
            for line in (1, 2, s.count("\n") + 1, s.count("\n") + 3):
                start = doc.pos_of_line(line)
                # reference: scan line-1 newlines from the top
                ref, p = 0, 0
                if line > 1:
                    ref = None
                    for _ in range(line - 1):
                        nl = s.find("\n", p)
                        if nl < 0:
                            ref = len(s)
                            break
                        p = nl + 1
                    if ref is None:
                        ref = p
                assert start == ref
                nl = s.find("\n", start)
                assert doc.line_span(line) == (
                    start, len(s) if nl < 0 else nl)

    @given(_ops)
    @settings(max_examples=60, deadline=None)
    def test_version_strictly_increases_on_change(self, ops):
        doc = Text("one\ntwo")
        for op in ops:
            before_text = doc.string()
            before_version = doc.version
            _apply(doc, op)
            if doc.string() != before_text:
                assert doc.version > before_version


class TestLayoutCache:
    @given(_ops, st.integers(1, 9), st.integers(1, 6), st.integers(0, 60))
    @settings(max_examples=120, deadline=None)
    def test_cached_layout_equals_uncached(self, ops, width, height, org):
        doc = Text("hello\nworld wide\n")
        frame = Frame(width, height)
        for op in ops:
            _apply(doc, op)
            s = doc.string()
            o = min(org, len(s))
            cached_twice = (frame.layout(doc, o), frame.layout(doc, o))
            fresh = frame.layout(s, o)
            assert cached_twice[0] == fresh
            assert cached_twice[1] == fresh  # the memoized copy too
            assert frame.visible_span(doc, o) == frame.visible_span(s, o)
            assert frame.rows_used(doc, o) == frame.rows_used(s, o)

    @given(_ops, st.integers(1, 9), st.integers(1, 6), st.integers(0, 60),
           st.integers(-7, 7))
    @settings(max_examples=120, deadline=None)
    def test_scroll_and_origins_match_string_path(self, ops, width, height,
                                                  org, delta):
        doc = Text("alpha\nbeta gamma\ndelta\n")
        frame = Frame(width, height)
        for op in ops:
            _apply(doc, op)
        s = doc.string()
        o = min(org, len(s))
        assert frame.scroll(doc, o, delta) == frame.scroll(s, o, delta)
        assert frame.scroll_origins(doc) == frame.scroll_origins(s)
        for line in (1, 2, 5, 99):
            assert (frame.origin_for_line(doc, line)
                    == frame.origin_for_line(s, line))

    def test_cache_is_actually_hit(self):
        doc = Text("x\n" * 50)
        frame = Frame(8, 5)
        before = counter("layout.cache_hit")
        frame.layout(doc, 0)
        frame.layout(doc, 0)
        assert counter("layout.cache_hit") > before


class TestDamageTrackedRender:
    """Replay realistic sessions; the incremental canvas must equal a
    from-scratch paint after every event."""

    def _random_session(self, seed: int, events: int) -> None:
        rng = random.Random(seed)
        system = build_system(width=120, height=40)
        h = system.help
        for step in range(events):
            windows = [w for w in h.windows.values()
                       if h.screen.column_of(w) is not None]
            window = rng.choice(windows)
            column = h.screen.column_of(window)
            rect = column.win_rect(window)
            if rect is None:
                column.make_visible(window)
                rect = column.win_rect(window)
            x = column.body_x0 + rng.randrange(0, max(1, column.text_width))
            y = rect.y0 + rng.randrange(0, rect.height)
            op = rng.choice(["click", "type", "scroll", "undo", "open",
                             "move", "hide", "resize"])
            if op == "click":
                h.left_click(x, y)
            elif op == "type":
                h.mouse_move(x, y)
                h.type_text(rng.choice(["a", "word\n", "  ", "\n\n"]))
            elif op == "scroll":
                h.scroll(window, rng.choice([-5, -1, 1, 5]))
            elif op == "undo":
                window.body.undo()
            elif op == "open":
                h.open_path("/usr/rob/src/help/help.c")
            elif op == "move":
                h.right_drag(column.body_x0 + 1, rect.y0,
                             rng.randrange(0, h.screen.rect.width),
                             rng.randrange(1, h.screen.rect.height))
            elif op == "hide":
                column.make_visible(rng.choice(column.tab_order()))
            elif op == "resize":
                h.resize(rng.choice([100, 120, 140]), rng.choice([36, 40]))
            incremental = render_screen(h)
            scratch = render_screen(h, full=True)
            assert incremental == scratch, (seed, step, op)

    def test_damage_render_identical_to_full(self):
        for seed in (3, 17, 42):
            self._random_session(seed, events=60)

    def test_repeated_render_repaints_nothing(self):
        system = build_system(width=120, height=40)
        h = system.help
        render_screen(h)
        before = counter("render.cells_repainted")
        assert render_screen(h) == render_screen(h, full=True)
        # full=True paints its own grid but must not disturb the cache;
        # the damage path itself touched zero cells
        damage_painted = counter("render.cells_repainted") - before
        assert damage_painted == h.screen.rect.width * h.screen.rect.height
