"""Unit tests for the execution layer itself."""

import pytest

from repro.core.execute import CommandResult, parse_helpsel
from repro.core.window import Subwindow


class TestResolveCommand:
    def test_context_dir_wins(self, app):
        app.ns.write("/usr/rob/src/help/mytool", "echo local")
        w = app.new_window("/usr/rob/src/help/help.c")
        resolved = app.executor.resolve_command("mytool", w.directory())
        assert resolved == "/usr/rob/src/help/mytool"

    def test_absolute_passes_through(self, app):
        assert app.executor.resolve_command("/bin/x", "/anywhere") == "/bin/x"

    def test_unknown_passes_bare_name(self, app):
        assert app.executor.resolve_command("grep", "/usr/rob") == "grep"

    def test_directory_is_not_executable(self, app):
        app.ns.mkdir("/usr/rob/grep")
        assert app.executor.resolve_command("grep", "/usr/rob") == "grep"


class TestEnvironment:
    def test_helpsel_encoding(self, app):
        w = app.new_window("/tmp/f", "abcdef")
        app.select(w, 2, 5)
        from repro.core.execute import ExecContext
        ctx = ExecContext(app, w, Subwindow.BODY, "cmd", "")
        env = app.executor.environment(ctx)
        assert env["helpsel"] == f"{w.id}:body:2:5"
        assert env["helpdir"] == "/tmp"

    def test_no_selection_no_helpsel(self, app):
        w = app.new_window("/tmp/f")
        from repro.core.execute import ExecContext
        ctx = ExecContext(app, w, Subwindow.BODY, "cmd", "")
        env = app.executor.environment(ctx)
        assert "helpsel" not in env

    def test_tag_selection_encoded(self, app):
        w = app.new_window("/tmp/f")
        app.select(w, 0, 4, Subwindow.TAG)
        from repro.core.execute import ExecContext
        ctx = ExecContext(app, w, Subwindow.TAG, "cmd", "")
        assert app.executor.environment(ctx)["helpsel"] == f"{w.id}:tag:0:4"


class TestParseHelpsel:
    def test_roundtrip(self):
        assert parse_helpsel("7:body:10:25") == (7, "body", 10, 25)
        assert parse_helpsel("3:tag:0:0") == (3, "tag", 0, 0)

    @pytest.mark.parametrize("bad", [
        "", "7", "7:body", "7:body:1", "7:nowhere:1:2", "x:body:1:2",
        "7:body:a:2", "7:body:1:2:3",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_helpsel(bad)


class TestDispatch:
    def test_empty_text_is_noop(self, app):
        w = app.new_window("/tmp/f")
        app.executor.execute(w, Subwindow.BODY, "   ")
        assert app.window_by_name("Errors") is None

    def test_builtin_wins_over_external(self, app):
        app.ns.write("/bin/Open", "echo shadowed")
        w = app.new_window("/tmp/f", "/usr/rob/lib/profile")
        app.select(w, 0, len(w.body))
        app.executor.execute(w, Subwindow.BODY, "Open")
        assert app.window_by_name("/usr/rob/lib/profile") is not None

    def test_no_runner_message(self, app):
        w = app.new_window("/tmp/f")
        app.executor.execute(w, Subwindow.BODY, "grep x y")
        assert "no command runner" in app.window_by_name("Errors").body.string()

    def test_registered_custom_builtin(self, app):
        calls = []
        app.executor.register("Zap", lambda ctx: calls.append(ctx.arg))
        w = app.new_window("/tmp/f")
        app.executor.execute(w, Subwindow.BODY, "Zap everything now")
        assert calls == ["everything now"]

    def test_command_result_defaults(self):
        result = CommandResult()
        assert (result.status, result.stdout, result.stderr) == (0, "", "")


class TestHover:
    def test_hover_over_tab(self, app):
        w = app.new_window("/tmp/hoverme", "x", column=app.screen.columns[0])
        column = app.screen.columns[0]
        tab_y = column.rect.y0 + column.tab_order().index(w)
        assert app.hover(column.rect.x0, tab_y) == "/tmp/hoverme"

    def test_hover_hidden_window_marked(self, app):
        column = app.screen.columns[0]
        body = "".join(f"l{i}\n" for i in range(60))
        windows = [app.new_window(f"/tmp/w{i}", body, column=column)
                   for i in range(6)]
        hidden = next(w for w in windows if w.hidden)
        tab_y = column.rect.y0 + column.tab_order().index(hidden)
        assert app.hover(column.rect.x0, tab_y) == f"{hidden.name()} (hidden)"

    def test_hover_elsewhere_empty(self, app):
        w = app.new_window("/tmp/x", "body")
        column = app.screen.column_of(w)
        assert app.hover(column.body_x0 + 1, w.y) == ""
        assert app.hover(column.rect.x0, column.rect.y1 - 1) == ""

    def test_hover_unnamed_window(self, app):
        w = app.new_window("", "x", column=app.screen.columns[0])
        column = app.screen.columns[0]
        tab_y = column.rect.y0 + column.tab_order().index(w)
        assert app.hover(column.rect.x0, tab_y) == f"(window {w.id})"
