"""Unit tests for the expansion rules."""

from repro.core.selection import (
    FileAddress,
    expand_execution,
    expand_operand,
    parse_address,
    resolve_name,
)
from repro.core.text import Text


class TestExpandExecution:
    def test_click_expands_to_word(self):
        t = Text("select Cut here")
        q0, q1, s = expand_execution(t, 8, 8)
        assert s == "Cut"
        assert (q0, q1) == (7, 10)

    def test_sweep_is_literal(self):
        t = Text("grep -n main")
        q0, q1, s = expand_execution(t, 0, 12)
        assert s == "grep -n main"

    def test_nonnull_disables_expansion(self):
        # "Making any non-null selection disables all such automatic actions"
        t = Text("Cut")
        _, _, s = expand_execution(t, 0, 2)
        assert s == "Cu"

    def test_click_in_whitespace(self):
        t = Text("a  b")
        _, _, s = expand_execution(t, 2, 2)
        assert s in ("", "a")


class TestExpandOperand:
    def test_null_selection_grabs_filename(self):
        t = Text("see dat.h there")
        _, _, s = expand_operand(t, 6, 6)
        assert s == "dat.h"

    def test_null_after_name_still_grabs(self):
        t = Text("/usr/rob/src/help/help.c")
        _, _, s = expand_operand(t, 24, 24)
        assert s == "/usr/rob/src/help/help.c"

    def test_grabs_line_suffix(self):
        t = Text("at text.c:32 crash")
        _, _, s = expand_operand(t, 5, 5)
        assert s == "text.c:32"

    def test_literal_selection(self):
        t = Text("abcdef")
        _, _, s = expand_operand(t, 1, 4)
        assert s == "bcd"


class TestParseAddress:
    def test_plain_name(self):
        assert parse_address("help.c") == FileAddress("help.c", None)

    def test_name_with_line(self):
        assert parse_address("help.c:27") == FileAddress("help.c", 27)

    def test_path_with_line(self):
        addr = parse_address("/sys/src/libc/mips/strchr.s:34")
        assert addr.name == "/sys/src/libc/mips/strchr.s"
        assert addr.line == 34

    def test_dotted_version_not_a_line(self):
        # only a colon introduces a line number
        assert parse_address("9.0") == FileAddress("9.0", None)

    def test_whitespace_stripped(self):
        assert parse_address("  f.c:3 ") == FileAddress("f.c", 3)

    def test_str_roundtrip(self):
        assert str(parse_address("a.c:7")) == "a.c:7"
        assert str(parse_address("a.c")) == "a.c"


class TestResolveName:
    def test_absolute_stands_alone(self):
        assert resolve_name("/bin/rc", "/usr/rob") == "/bin/rc"

    def test_relative_gets_context(self):
        assert resolve_name("dat.h", "/usr/rob/src/help") == \
            "/usr/rob/src/help/dat.h"

    def test_relative_with_subdir(self):
        assert resolve_name("mips/strchr.s", "/sys/src") == \
            "/sys/src/mips/strchr.s"

    def test_normalizes(self):
        assert resolve_name("../dat.h", "/usr/rob/src") == "/usr/rob/dat.h"
