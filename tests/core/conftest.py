"""Shared fixtures: a small Plan 9-ish world and a help session on it."""

import pytest

from repro.core.help import Help
from repro.fs import VFS, Namespace

HELP_C = """#include <u.h>
#include <libc.h>
#include "dat.h"
#include "fns.h"

int n = 0;

void
main(int argc, char *argv[])
{
\tn = 1;
}
"""

DAT_H = """typedef struct Text Text;
typedef struct Page Page;

extern int n;
"""

PROFILE = """bind -c $home/tmp /tmp
bind -a $home/bin/rc /bin
"""


@pytest.fixture
def world():
    """A VFS populated like the paper's examples."""
    fs = VFS()
    for d in ("/bin", "/tmp", "/mnt",
              "/usr/rob/lib", "/usr/rob/src/help",
              "/help/edit", "/help/cbr", "/help/db", "/help/mail"):
        fs.mkdir(d, parents=True)
    fs.create("/usr/rob/src/help/help.c", HELP_C)
    fs.create("/usr/rob/src/help/dat.h", DAT_H)
    fs.create("/usr/rob/src/help/errs.c", "void errs(char *s) {}\n")
    fs.create("/usr/rob/src/help/file.c", "/* file ops */\n")
    fs.create("/usr/rob/lib/profile", PROFILE)
    fs.create("/help/edit/stf",
              "Open\nPattern \"\nText ' '\nCut Paste Snarf\nWrite New\n")
    fs.create("/help/cbr/stf", "Open mk src decl uses *.c\n")
    fs.create("/help/db/stf",
              "ps broke pc regs\nstack kstack nextkstack\n")
    fs.create("/help/mail/stf", "headers messages delete reread send\n")
    return Namespace(fs)


@pytest.fixture
def app(world):
    """A help session (no external runner) on the world."""
    return Help(world, width=100, height=40)
