"""Unit and property tests for the text engine."""

import pytest
from hypothesis import given, strategies as st

from repro.core.text import GapBuffer, Mark, Text


class TestGapBuffer:
    def test_empty(self):
        buf = GapBuffer()
        assert len(buf) == 0
        assert buf.text() == ""

    def test_initial_text(self):
        buf = GapBuffer("hello")
        assert buf.text() == "hello"
        assert len(buf) == 5

    def test_insert_at_start_middle_end(self):
        buf = GapBuffer("bd")
        buf.insert(0, "a")
        buf.insert(2, "c")
        buf.insert(4, "e")
        assert buf.text() == "abcde"

    def test_insert_empty_is_noop(self):
        buf = GapBuffer("x")
        buf.insert(0, "")
        assert buf.text() == "x"

    def test_insert_out_of_range(self):
        buf = GapBuffer("x")
        with pytest.raises(IndexError):
            buf.insert(5, "y")
        with pytest.raises(IndexError):
            buf.insert(-1, "y")

    def test_delete_returns_removed(self):
        buf = GapBuffer("abcdef")
        assert buf.delete(1, 4) == "bcd"
        assert buf.text() == "aef"

    def test_delete_out_of_range(self):
        buf = GapBuffer("abc")
        with pytest.raises(IndexError):
            buf.delete(1, 9)

    def test_slice_spanning_gap(self):
        buf = GapBuffer("abcdef")
        buf.insert(3, "XYZ")  # gap now sits at 6
        assert buf.slice(1, 8) == "bcXYZde"

    def test_slice_clamps(self):
        buf = GapBuffer("abc")
        assert buf.slice(-5, 99) == "abc"
        assert buf.slice(2, 1) == ""

    def test_char_at(self):
        buf = GapBuffer("ab")
        assert buf.char_at(0) == "a"
        assert buf.char_at(1) == "b"
        assert buf.char_at(2) == ""

    def test_grow_past_initial_gap(self):
        buf = GapBuffer("", gap=2)
        buf.insert(0, "x" * 100)
        assert buf.text() == "x" * 100

    def test_many_alternating_edits(self):
        buf = GapBuffer("0123456789")
        buf.delete(0, 1)
        buf.insert(9, "!")
        buf.delete(4, 6)
        assert buf.text() == "1234789!"


@st.composite
def edit_scripts(draw):
    """A random sequence of insert/delete operations."""
    ops = []
    length = draw(st.integers(0, 30))
    for _ in range(draw(st.integers(0, 12))):
        kind = draw(st.sampled_from(["ins", "del"]))
        if kind == "ins":
            pos = draw(st.integers(0, length))
            s = draw(st.text(alphabet="abc\n", min_size=1, max_size=8))
            ops.append(("ins", pos, s))
            length += len(s)
        elif length > 0:
            a = draw(st.integers(0, length - 1))
            b = draw(st.integers(a + 1, length))
            ops.append(("del", a, b))
            length -= b - a
    init = draw(st.text(alphabet="xyz\n", max_size=30).map(lambda s: s[:30]))
    return init, ops


class TestGapBufferProperties:
    @given(edit_scripts())
    def test_matches_reference_string(self, script):
        """The gap buffer agrees with a plain-string reference model."""
        init, ops = script
        buf = GapBuffer(init)
        ref = init
        for op in ops:
            if op[0] == "ins":
                _, pos, s = op
                if pos <= len(ref):
                    buf.insert(pos, s)
                    ref = ref[:pos] + s + ref[pos:]
            else:
                _, a, b = op
                if b <= len(ref):
                    got = buf.delete(a, b)
                    assert got == ref[a:b]
                    ref = ref[:a] + ref[b:]
            assert buf.text() == ref
            assert len(buf) == len(ref)

    @given(st.text(alphabet="ab\n", max_size=40), st.integers(0, 45),
           st.integers(0, 45))
    def test_slice_matches_python_slice(self, s, a, b):
        buf = GapBuffer(s)
        lo, hi = max(0, min(a, len(s))), max(0, min(b, len(s)))
        assert buf.slice(a, b) == s[lo:hi] if lo < hi else buf.slice(a, b) == ""


class TestTextEditing:
    def test_insert_delete_roundtrip(self):
        t = Text("hello world")
        t.delete(5, 11)
        t.insert(5, ", there")
        assert t.string() == "hello, there"

    def test_replace(self):
        t = Text("abc")
        t.replace(1, 2, "XY")
        assert t.string() == "aXYc"

    def test_set_string(self):
        t = Text("old")
        t.set_string("new contents")
        assert t.string() == "new contents"

    def test_delete_empty_range_noop(self):
        t = Text("abc")
        assert t.delete(2, 2) == ""
        assert t.string() == "abc"


class TestUndo:
    def test_undo_insert(self):
        t = Text("ab")
        t.insert(1, "X")
        assert t.undo()
        assert t.string() == "ab"

    def test_undo_delete(self):
        t = Text("abc")
        t.delete(0, 2)
        assert t.undo()
        assert t.string() == "abc"

    def test_redo(self):
        t = Text("abc")
        t.delete(0, 1)
        t.undo()
        assert t.redo()
        assert t.string() == "bc"

    def test_undo_empty_returns_false(self):
        t = Text("x")
        assert not t.undo()
        assert not t.redo()

    def test_new_edit_clears_redo(self):
        t = Text("abc")
        t.delete(0, 1)
        t.undo()
        t.insert(0, "Z")
        assert not t.can_redo

    def test_group_is_single_step(self):
        t = Text("hello")
        with t.group():
            t.delete(0, 5)
            t.insert(0, "goodbye")
        assert t.string() == "goodbye"
        t.undo()
        assert t.string() == "hello"

    def test_nested_groups_flatten(self):
        t = Text("x")
        with t.group():
            t.insert(1, "a")
            with t.group():
                t.insert(2, "b")
        t.undo()
        assert t.string() == "x"

    def test_replace_is_one_undo(self):
        t = Text("aaa")
        t.replace(1, 2, "B")
        t.undo()
        assert t.string() == "aaa"

    @given(edit_scripts())
    def test_undo_all_restores_initial(self, script):
        """Undoing every group always recovers the initial text."""
        init, ops = script
        t = Text(init)
        for op in ops:
            if op[0] == "ins" and op[1] <= len(t):
                t.insert(op[1], op[2])
            elif op[0] == "del" and op[2] <= len(t):
                t.delete(op[1], op[2])
        while t.undo():
            pass
        assert t.string() == init

    @given(edit_scripts())
    def test_undo_redo_is_identity(self, script):
        init, ops = script
        t = Text(init)
        for op in ops:
            if op[0] == "ins" and op[1] <= len(t):
                t.insert(op[1], op[2])
            elif op[0] == "del" and op[2] <= len(t):
                t.delete(op[1], op[2])
        final = t.string()
        undone = 0
        while t.undo():
            undone += 1
        for _ in range(undone):
            assert t.redo()
        assert t.string() == final


class TestMarks:
    def test_insert_before_shifts(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(3, 5))
        t.insert(0, "XX")
        assert (m.q0, m.q1) == (5, 7)

    def test_insert_after_leaves(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(1, 2))
        t.insert(4, "XX")
        assert (m.q0, m.q1) == (1, 2)

    def test_insert_inside_grows(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(1, 5))
        t.insert(3, "XY")
        assert (m.q0, m.q1) == (1, 7)

    def test_delete_before_shifts(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(4, 6))
        t.delete(0, 2)
        assert (m.q0, m.q1) == (2, 4)

    def test_delete_spanning_collapses(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(2, 4))
        t.delete(1, 5)
        assert (m.q0, m.q1) == (1, 1)

    def test_delete_overlapping_start(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(2, 5))
        t.delete(1, 3)
        assert (m.q0, m.q1) == (1, 3)

    def test_trailing_mark_rides_typing(self):
        t = Text("ab")
        caret = t.add_mark(Mark(1, 1, trailing=True))
        t.insert(1, "X")
        assert (caret.q0, caret.q1) == (2, 2)

    def test_non_trailing_mark_stays_before_insert(self):
        t = Text("ab")
        m = t.add_mark(Mark(1, 1))
        t.insert(1, "X")
        assert (m.q0, m.q1) == (1, 1)

    def test_drop_mark(self):
        t = Text("ab")
        m = t.add_mark(Mark(0, 1))
        t.drop_mark(m)
        t.insert(0, "XXX")
        assert (m.q0, m.q1) == (0, 1)  # no longer tracked

    def test_undo_adjusts_marks(self):
        t = Text("abcdef")
        m = t.add_mark(Mark(4, 6))
        t.delete(0, 2)
        assert (m.q0, m.q1) == (2, 4)
        t.undo()
        assert (m.q0, m.q1) == (4, 6)

    @given(edit_scripts(), st.integers(0, 30), st.integers(0, 30))
    def test_mark_always_within_bounds(self, script, a, b):
        init, ops = script
        t = Text(init)
        q0, q1 = sorted((min(a, len(t)), min(b, len(t))))
        m = t.add_mark(Mark(q0, q1))
        for op in ops:
            if op[0] == "ins" and op[1] <= len(t):
                t.insert(op[1], op[2])
            elif op[0] == "del" and op[2] <= len(t):
                t.delete(op[1], op[2])
            assert 0 <= m.q0 <= m.q1 <= len(t)


class TestLineArithmetic:
    def test_nlines(self):
        assert Text("").nlines() == 0
        assert Text("a").nlines() == 1
        assert Text("a\n").nlines() == 1
        assert Text("a\nb").nlines() == 2
        assert Text("a\nb\n").nlines() == 2

    def test_line_of(self):
        t = Text("aa\nbb\ncc")
        assert t.line_of(0) == 1
        assert t.line_of(2) == 1
        assert t.line_of(3) == 2
        assert t.line_of(7) == 3

    def test_pos_of_line(self):
        t = Text("aa\nbb\ncc")
        assert t.pos_of_line(1) == 0
        assert t.pos_of_line(2) == 3
        assert t.pos_of_line(3) == 6
        assert t.pos_of_line(99) == 8  # clamped to end

    def test_line_span(self):
        t = Text("aa\nbbbb\n")
        assert t.line_span(2) == (3, 7)

    def test_line_roundtrip(self):
        t = Text("one\ntwo\nthree\n")
        for line in (1, 2, 3):
            assert t.line_of(t.pos_of_line(line)) == line


class TestExpansion:
    def test_word_at_middle(self):
        t = Text("execute Cut now")
        q0, q1 = t.word_at(9)
        assert t.slice(q0, q1) == "Cut"

    def test_word_at_boundary(self):
        t = Text("ab cd")
        assert t.slice(*t.word_at(0)) == "ab"
        assert t.slice(*t.word_at(2)) == "ab"  # just after 'ab'

    def test_word_at_nonword(self):
        t = Text("a  b")
        q0, q1 = t.word_at(2)  # middle of the spaces: scan left finds nothing
        assert (q0, q1) == (2, 2) or t.slice(q0, q1) in ("a", "b")

    def test_filename_with_line_number(self):
        t = Text("see text.c:32 there")
        q0, q1 = t.filename_at(8)
        assert t.slice(q0, q1) == "text.c:32"

    def test_filename_with_path(self):
        t = Text("open /usr/rob/lib/profile now")
        q0, q1 = t.filename_at(10)
        assert t.slice(q0, q1) == "/usr/rob/lib/profile"

    def test_filename_at_end_of_name(self):
        # Figure 3: null selection sits right after the typed name.
        t = Text("/usr/rob/src/help/help.c")
        q0, q1 = t.filename_at(len(t))
        assert t.slice(q0, q1) == "/usr/rob/src/help/help.c"

    def test_filename_at_gets_dash(self):
        t = Text("dat-2.h ok")
        assert t.slice(*t.filename_at(3)) == "dat-2.h"


class TestSearch:
    def test_find_literal(self):
        t = Text("abc abc")
        assert t.find("abc") == (0, 3)
        assert t.find("abc", 1) == (4, 7)
        assert t.find("zzz") is None
        assert t.find("") is None

    def test_find_pattern(self):
        t = Text("foo bar42 baz")
        assert t.find_pattern(r"bar\d+") == (4, 9)
        assert t.find_pattern(r"qux") is None

    def test_find_pattern_bad_regex(self):
        assert Text("x").find_pattern("[") is None

    def test_lines(self):
        assert list(Text("a\nb").lines()) == ["a", "b"]
