"""Unit tests for the mouse gesture machine."""

import pytest

from repro.core.events import Button, Gesture, GestureKind, MouseMachine, Point


@pytest.fixture
def machine():
    return MouseMachine()


class TestBasicGestures:
    def test_left_click_selects(self, machine):
        out = machine.click(5, 3, Button.LEFT)
        assert [g.kind for g in out] == [GestureKind.SELECT]
        assert out[0].is_click
        assert out[0].start == Point(5, 3)

    def test_left_sweep_selects_range(self, machine):
        out = machine.sweep(2, 2, 8, 2, Button.LEFT)
        kinds = [g.kind for g in out]
        assert kinds == [GestureKind.SWEEP, GestureKind.SELECT]
        final = out[-1]
        assert final.start == Point(2, 2)
        assert final.end == Point(8, 2)
        assert not final.is_click

    def test_middle_click_executes(self, machine):
        out = machine.click(4, 4, Button.MIDDLE)
        assert [g.kind for g in out] == [GestureKind.EXECUTE]

    def test_middle_sweep_executes_range(self, machine):
        out = machine.sweep(0, 0, 6, 0, Button.MIDDLE)
        assert out[-1].kind == GestureKind.EXECUTE
        assert out[-1].end == Point(6, 0)
        # middle drag produces no live sweep events
        assert all(g.kind != GestureKind.SWEEP for g in out)

    def test_right_drag_moves(self, machine):
        out = machine.sweep(1, 1, 30, 20, Button.RIGHT)
        assert out[-1].kind == GestureKind.MOVE
        assert out[-1].start == Point(1, 1)
        assert out[-1].end == Point(30, 20)


class TestChords:
    def test_left_then_middle_is_cut(self, machine):
        machine.press(2, 2, Button.LEFT)
        machine.drag(6, 2)
        out = machine.press(6, 2, Button.MIDDLE)
        assert [g.kind for g in out] == [GestureKind.CHORD_CUT]
        assert out[0].start == Point(2, 2)
        assert out[0].end == Point(6, 2)

    def test_left_then_right_is_paste(self, machine):
        machine.press(2, 2, Button.LEFT)
        out = machine.press(2, 2, Button.RIGHT)
        assert [g.kind for g in out] == [GestureKind.CHORD_PASTE]

    def test_cut_then_paste_while_left_held(self, machine):
        """The cut-and-paste (snarf) chord from the paper."""
        machine.press(2, 2, Button.LEFT)
        machine.drag(9, 2)
        cut = machine.press(9, 2, Button.MIDDLE)
        machine.release(9, 2, Button.MIDDLE)
        paste = machine.press(9, 2, Button.RIGHT)
        machine.release(9, 2, Button.RIGHT)
        assert cut[0].kind == GestureKind.CHORD_CUT
        assert paste[0].kind == GestureKind.CHORD_PASTE

    def test_chorded_release_is_spent(self, machine):
        machine.press(2, 2, Button.LEFT)
        machine.press(2, 2, Button.MIDDLE)
        machine.release(2, 2, Button.MIDDLE)
        out = machine.release(2, 2, Button.LEFT)
        assert out == []  # no SELECT after a chord

    def test_middle_primary_has_no_chords(self, machine):
        machine.press(2, 2, Button.MIDDLE)
        assert machine.press(2, 2, Button.RIGHT) == []
        out = machine.release(2, 2, Button.MIDDLE)
        assert [g.kind for g in out] == [GestureKind.EXECUTE]


class TestMachineState:
    def test_drag_without_press_is_ignored(self, machine):
        assert machine.drag(5, 5) == []

    def test_release_of_nonprimary_ignored(self, machine):
        machine.press(1, 1, Button.LEFT)
        assert machine.release(1, 1, Button.RIGHT) == []

    def test_machine_resets_after_release(self, machine):
        machine.click(1, 1, Button.LEFT)
        assert machine.primary == Button.NONE
        out = machine.click(2, 2, Button.MIDDLE)
        assert out[0].kind == GestureKind.EXECUTE

    def test_held_tracks_buttons(self, machine):
        machine.press(0, 0, Button.LEFT)
        machine.press(0, 0, Button.MIDDLE)
        assert machine.held == Button.LEFT | Button.MIDDLE
        machine.release(0, 0, Button.MIDDLE)
        assert machine.held == Button.LEFT

    def test_invalid_button_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.press(0, 0, Button.LEFT | Button.MIDDLE)

    def test_sweep_updates_live(self, machine):
        machine.press(0, 0, Button.LEFT)
        out = machine.drag(3, 0)
        assert out[0].kind == GestureKind.SWEEP
        out = machine.drag(5, 0)
        assert out[0].end == Point(5, 0)
