"""Tests for the extension builtins: Clone! and Shell windows."""

import pytest

from repro import build_system
from repro.core.window import Subwindow


@pytest.fixture
def system():
    return build_system()


class TestClone:
    def test_clone_copies_body(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        h.execute_text(w, "Clone!", Subwindow.TAG)
        clones = [x for x in h.windows.values() if x.name() == w.name()]
        assert len(clones) == 2
        a, b = clones
        assert a.body.string() == b.body.string()

    def test_clone_is_independent(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        h.execute_text(w, "Clone!", Subwindow.TAG)
        clone = next(x for x in h.windows.values()
                     if x.name() == w.name() and x is not w)
        clone.body.insert(0, "edited ")
        assert not w.body.string().startswith("edited")
        clone.body_sel.set(0, 3)
        assert (w.body_sel.q0, w.body_sel.q1) == (0, 0)

    def test_clone_preserves_dirty(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        w.mark_dirty()
        h.execute_text(w, "Clone!", Subwindow.TAG)
        clone = next(x for x in h.windows.values()
                     if x.name() == w.name() and x is not w)
        assert clone.dirty

    def test_either_clone_can_put(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        h.execute_text(w, "Clone!", Subwindow.TAG)
        clone = next(x for x in h.windows.values()
                     if x.name() == w.name() and x is not w)
        clone.replace_body("from the clone\n", dirty=True)
        h.execute_text(clone, "Put!", Subwindow.TAG)
        assert system.ns.read("/usr/rob/lib/profile") == "from the clone\n"


class TestShellWindow:
    def make_shell(self, system, directory="/usr/rob"):
        h = system.help
        anchor = h.new_window(f"{directory}/anchor")
        h.point_at(anchor, 0)
        h.execute_text(anchor, "Shell")
        return h.window_by_name(f"{directory}/-rc")

    def type_into(self, system, window, text):
        h = system.help
        column = h.screen.column_of(window)
        rect = column.win_rect(window)
        h.mouse_move(column.body_x0, rect.y0 + 1)
        h.current = (window, Subwindow.BODY)
        h.mouse_move(-1, -1)  # typing falls back to the current selection
        h.type_text(text)

    def test_shell_window_created_with_prompt(self, system):
        shell_w = self.make_shell(system)
        assert shell_w is not None
        assert shell_w.is_shell
        assert shell_w.body.string() == "% "

    def test_shell_runs_line_on_newline(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "echo hello\n")
        body = shell_w.body.string()
        assert "hello\n" in body
        assert body.endswith("% ")

    def test_shell_runs_in_window_directory(self, system):
        shell_w = self.make_shell(system, "/usr/rob/src/help")
        self.type_into(system, shell_w, "pwd\n")
        assert "/usr/rob/src/help\n" in shell_w.body.string()

    def test_partial_line_waits(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "echo par")
        assert shell_w.body.string() == "% echo par"
        self.type_into(system, shell_w, "tial\n")
        assert "partial\n" in shell_w.body.string()

    def test_empty_line_just_reprompts(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "\n")
        assert shell_w.body.string() == "% \n% "

    def test_stderr_shown(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "no-such-command\n")
        assert "not found" in shell_w.body.string()

    def test_multiple_commands(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "echo one\n")
        self.type_into(system, shell_w, "echo two\n")
        body = shell_w.body.string()
        assert "one\n" in body and "two\n" in body
        assert body.count("% ") == 3

    def test_two_lines_in_one_burst(self, system):
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "echo a\necho b\n")
        body = shell_w.body.string()
        assert "a\n" in body and "b\n" in body

    def test_shell_can_reach_mnt_help(self, system):
        """A shell window scripting help itself — full circle."""
        shell_w = self.make_shell(system)
        self.type_into(system, shell_w, "cat /mnt/help/index\n")
        assert "/help/edit/stf" in shell_w.body.string()

    def test_normal_window_newline_does_not_execute(self, system):
        """The rule stands everywhere else: newline is just a character."""
        h = system.help
        w = h.new_window("/tmp/plain", "")
        h.point_at(w, 0)
        h.mouse_move(-1, -1)
        h.type_text("echo nope\n")
        assert w.body.string() == "echo nope\n"
        assert h.window_by_name("Errors") is None
