"""Tests for session dump/restore."""

import pytest

from repro import build_system
from repro.core.dump import DumpError, dump, load, restore, save
from repro.core.window import Subwindow


@pytest.fixture
def system():
    return build_system(width=140, height=50)


class TestDumpFormat:
    def test_header(self, system):
        text = dump(system.help)
        assert text.startswith("help-dump 1\nscreen 140 50 2\n")

    def test_every_window_listed(self, system):
        text = dump(system.help)
        for w in system.help.windows.values():
            if w.name():
                assert w.name() in text

    def test_clean_windows_have_no_inline_body(self, system):
        h = system.help
        h.open_path("/usr/rob/lib/profile")
        text = dump(h)
        window_block = text[text.index("/usr/rob/lib/profile"):]
        assert window_block.splitlines()[2] == "body -"

    def test_dirty_windows_carry_body(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        w.replace_body("unsaved edit\n", dirty=True)
        text = dump(h)
        assert "unsaved edit" in text

    def test_dump_is_openable_text(self, system):
        """The dump is just a file: help can open its own dump."""
        h = system.help
        save(h, "/tmp/session.dump")
        w = h.open_path("/tmp/session.dump")
        assert w.body.string().startswith("help-dump 1")


class TestRoundTrip:
    def test_layout_survives(self, system):
        h = system.help
        h.open_path("/usr/rob/lib/profile")
        h.open_path("/usr/rob/src/help/exec.c", line=213)
        before = {w.name(): (w.y, w.hidden, w.org)
                  for w in h.windows.values()}
        text = dump(h)
        load(h, text)
        after = {w.name(): (w.y, w.hidden, w.org)
                 for w in h.windows.values()}
        assert after == before

    def test_unsaved_edits_survive(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        w.replace_body("precious unsaved\nwork\n", dirty=True)
        load(h, dump(h))
        restored = h.window_by_name("/usr/rob/lib/profile")
        assert restored.body.string() == "precious unsaved\nwork\n"
        assert restored.dirty
        assert "Put!" in restored.tag.string()

    def test_clean_windows_reload_from_files(self, system):
        h = system.help
        h.open_path("/usr/rob/lib/profile")
        text = dump(h)
        system.ns.write("/usr/rob/lib/profile", "changed on disk\n")
        load(h, text)
        restored = h.window_by_name("/usr/rob/lib/profile")
        assert restored.body.string() == "changed on disk\n"

    def test_dirty_body_with_trailing_newlines(self, system):
        h = system.help
        w = h.new_window("/tmp/x", "a\n\n\nb\n\n", )
        w.mark_dirty()
        load(h, dump(h))
        assert h.window_by_name("/tmp/x").body.string() == "a\n\n\nb\n\n"

    def test_unnamed_window_round_trips(self, system):
        h = system.help
        h.new_window("", "scratch contents")
        load(h, dump(h))
        scratch = [x for x in h.windows.values()
                   if x.body.string() == "scratch contents"]
        assert len(scratch) == 1

    def test_layout_invariants_after_load(self, system):
        h = system.help
        for i in range(6):
            h.new_window(f"/tmp/w{i}", f"body {i}\n" * (i + 1))
        load(h, dump(h))
        for column in h.screen.columns:
            bottom = None
            for w in column.visible():
                rect = column.win_rect(w)
                assert rect is not None and rect.height >= 1
                if bottom is not None:
                    assert rect.y0 == bottom
                bottom = rect.y1


class TestBuiltins:
    def test_dump_and_load_builtins(self, system):
        h = system.help
        w = h.open_path("/usr/rob/lib/profile")
        w.replace_body("builtin dumped\n", dirty=True)
        h.execute_text(w, "Dump /tmp/d", Subwindow.TAG)
        assert system.ns.exists("/tmp/d")
        w.replace_body("clobbered")
        h.execute_text(w, "Load /tmp/d", Subwindow.TAG)
        restored = h.window_by_name("/usr/rob/lib/profile")
        assert restored.body.string() == "builtin dumped\n"

    def test_default_path(self, system):
        h = system.help
        h.execute_text(h.window_by_name("help/Boot"), "Dump", Subwindow.TAG)
        assert system.ns.exists("/usr/rob/help.dump")

    def test_load_missing_reports(self, system):
        h = system.help
        h.execute_text(h.window_by_name("help/Boot"), "Load /nope",
                       Subwindow.TAG)
        assert "Load" in h.window_by_name("Errors").body.string()


class TestErrors:
    def test_not_a_dump(self, system):
        with pytest.raises(DumpError, match="not a help dump"):
            load(system.help, "just some text\n")

    def test_truncated_dump(self, system):
        with pytest.raises(DumpError):
            load(system.help, "help-dump 1\nscreen 100 40 2\n"
                              "window 0 1 0 0 0 /tmp/x\n")

    def test_restore_function(self, system):
        h = system.help
        save(h, "/tmp/s")
        restore(h, "/tmp/s")
        assert h.window_by_name("help/Boot") is not None
