"""Unit tests for the screen: columns, hit testing, window movement."""

import pytest

from repro.core.frame import Rect
from repro.core.screen import Region, Screen
from repro.core.window import Window


def lines(n):
    return "".join(f"line {i}\n" for i in range(n))


@pytest.fixture
def screen():
    return Screen(width=80, height=24, ncolumns=2)


class TestLayout:
    def test_two_columns_split_width(self, screen):
        left, right = screen.columns
        assert left.rect == Rect(0, 1, 40, 24)
        assert right.rect == Rect(40, 1, 80, 24)

    def test_header_row_reserved(self, screen):
        assert all(col.rect.y0 == 1 for col in screen.columns)

    def test_single_column(self):
        s = Screen(width=40, height=10, ncolumns=1)
        assert s.columns[0].rect == Rect(0, 1, 40, 10)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Screen(width=3, height=24, ncolumns=2)
        with pytest.raises(ValueError):
            Screen(width=80, height=2)


class TestExpand:
    def test_expand_grows_column(self, screen):
        screen.expand_column(0)
        assert screen.columns[0].rect.width == 60
        assert screen.columns[1].rect.width == 20

    def test_expand_again_restores(self, screen):
        screen.expand_column(0)
        screen.expand_column(0)
        assert screen.columns[0].rect.width == 40

    def test_expand_other_switches(self, screen):
        screen.expand_column(0)
        screen.expand_column(1)
        assert screen.columns[1].rect.width == 60

    def test_expand_bad_index(self, screen):
        with pytest.raises(IndexError):
            screen.expand_column(5)

    def test_windows_survive_expansion(self, screen):
        w = Window(1, "/a", lines(5))
        screen.columns[1].place(w)
        screen.expand_column(0)
        rect = screen.columns[1].win_rect(w)
        assert rect is not None
        assert rect.x0 >= screen.columns[1].rect.x0


class TestHitTesting:
    def test_header_hit(self, screen):
        hit = screen.hit(10, 0)
        assert hit.region is Region.HEADER
        assert hit.column is screen.columns[0]

    def test_out_of_bounds(self, screen):
        assert screen.hit(-1, 5).region is Region.BACKGROUND
        assert screen.hit(200, 5).region is Region.BACKGROUND

    def test_tab_strip_hit(self, screen):
        w = Window(1, "/a", lines(2))
        screen.columns[0].place(w)
        hit = screen.hit(0, 1)
        assert hit.region is Region.TAB
        assert hit.window is w

    def test_tab_strip_empty_square(self, screen):
        hit = screen.hit(0, 5)
        assert hit.region is Region.TAB
        assert hit.window is None

    def test_tag_hit_with_offset(self, screen):
        w = Window(1, "/abc", lines(2))
        screen.columns[0].place(w)
        hit = screen.hit(3, w.y)  # cell 3 -> text col 2 -> 'b' of "/abc"
        assert hit.region is Region.TAG
        assert hit.window is w
        assert hit.pos == 2

    def test_body_hit_with_offset(self, screen):
        w = Window(1, "/a", "hello\nworld\n")
        screen.columns[0].place(w)
        hit = screen.hit(2, w.y + 2)  # second body row, text col 1
        assert hit.region is Region.BODY
        assert hit.pos == 7  # 'o' of world

    def test_body_hit_respects_origin(self, screen):
        w = Window(1, "/a", "aa\nbb\ncc\n")
        screen.columns[0].place(w)
        w.org = 3  # scrolled one line
        hit = screen.hit(1, w.y + 1)
        assert hit.pos == 3

    def test_background_in_empty_column(self, screen):
        hit = screen.hit(50, 10)
        assert hit.region is Region.BACKGROUND
        assert hit.column is screen.columns[1]

    def test_subwindow_property(self, screen):
        from repro.core.window import Subwindow
        w = Window(1, "/a", "x")
        screen.columns[0].place(w)
        assert screen.hit(2, w.y).subwindow is Subwindow.TAG
        assert screen.hit(2, w.y + 1).subwindow is Subwindow.BODY
        assert screen.hit(10, 0).subwindow is None


class TestWindowMovement:
    def test_move_within_column(self, screen):
        w1 = Window(1, "/a", lines(3))
        w2 = Window(2, "/b", lines(3))
        screen.columns[0].place(w1)
        screen.columns[0].place(w2)
        screen.move_window(w2, 5, 1)
        assert w2.y == 1

    def test_move_across_columns(self, screen):
        w = Window(1, "/a", lines(3))
        screen.columns[0].place(w)
        screen.move_window(w, 50, 5)
        assert screen.column_of(w) is screen.columns[1]
        assert w not in screen.columns[0].windows

    def test_move_to_nowhere_keeps_column(self, screen):
        w = Window(1, "/a")
        screen.columns[0].place(w)
        screen.move_window(w, 200, 5)  # off screen: stays put
        assert screen.column_of(w) is screen.columns[0]

    def test_remove_window(self, screen):
        w = Window(1, "/a")
        screen.columns[1].place(w)
        screen.remove_window(w)
        assert screen.column_of(w) is None

    def test_all_windows(self, screen):
        w1 = Window(1, "/a")
        w2 = Window(2, "/b")
        screen.columns[0].place(w1)
        screen.columns[1].place(w2)
        assert set(screen.all_windows()) == {w1, w2}

    def test_column_of_unknown(self, screen):
        assert screen.column_of(Window(9, "/zz")) is None


class TestResize:
    def test_resize_preserves_proportions(self, screen):
        screen.resize(160, 48)
        assert screen.rect == Rect(0, 0, 160, 48)
        left, right = screen.columns
        assert left.rect.width == 80
        assert right.rect.width == 80
        assert left.rect.y1 == 48

    def test_resize_after_expand_keeps_ratio(self, screen):
        screen.expand_column(0)  # 60/20 of 80
        screen.resize(160, 48)
        assert screen.columns[0].rect.width == 120

    def test_windows_survive_resize(self, screen):
        w = Window(1, "/a", lines(10))
        screen.columns[0].place(w)
        screen.resize(60, 12)
        rect = screen.columns[0].win_rect(w)
        assert rect is not None
        assert rect.y1 <= 12

    def test_shrink_may_hide_but_never_corrupts(self, screen):
        wins = [Window(i, f"/w{i}", lines(6)) for i in range(8)]
        for w in wins:
            screen.columns[0].place(w)
        screen.resize(40, 8)
        col = screen.columns[0]
        bottom = None
        for w in col.visible():
            rect = col.win_rect(w)
            assert rect.height >= 1
            if bottom is not None:
                assert rect.y0 == bottom
            bottom = rect.y1

    def test_too_small_rejected(self, screen):
        with pytest.raises(ValueError):
            screen.resize(2, 40)
