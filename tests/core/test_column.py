"""Unit and property tests for columns and the placement heuristic."""

from hypothesis import given, strategies as st

from repro.core.column import MIN_NEW_ROWS, Column
from repro.core.frame import Rect
from repro.core.window import Window


def make_column(height=30, width=40):
    return Column(Rect(0, 1, width, 1 + height))


def lines(n):
    return "".join(f"line {i}\n" for i in range(n))


class TestGeometry:
    def test_tab_strip_reserved(self):
        col = make_column()
        assert col.body_x0 == 1
        assert col.text_width == 39

    def test_empty_column(self):
        col = make_column()
        assert col.visible() == []
        assert col.window_at(5) is None


class TestPlacementRule1:
    def test_first_window_at_top(self):
        col = make_column()
        w = Window(1, "/a", lines(3))
        col.place(w)
        assert w.y == col.rect.y0
        assert not w.hidden

    def test_second_below_lowest_text(self):
        col = make_column(height=30)
        w1 = Window(1, "/a", lines(4))  # tag + 4 body rows -> next at y0+5
        col.place(w1)
        w2 = Window(2, "/b", lines(2))
        col.place(w2)
        assert w2.y == col.rect.y0 + 5

    def test_short_text_leaves_room(self):
        col = make_column(height=30)
        col.place(Window(1, "/a", ""))  # empty body still uses one row
        w2 = Window(2, "/b", "")
        col.place(w2)
        assert w2.y == col.rect.y0 + 2

    def test_window_extends_to_next_window(self):
        col = make_column(height=30)
        w1 = Window(1, "/a", lines(4))
        w2 = Window(2, "/b", lines(2))
        col.place(w1)
        col.place(w2)
        r1 = col.win_rect(w1)
        assert r1.y1 == w2.y
        r2 = col.win_rect(w2)
        assert r2.y1 == col.rect.y1


class TestPlacementRule2:
    def test_covers_half_the_lowest_window(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(30))  # fills the column
        col.place(w1)
        w2 = Window(2, "/b", lines(2))
        col.place(w2)
        # rule 1 target would be the column bottom; rule 2 halves w1
        assert w2.y == w1.y + 10
        assert col.win_rect(w1).height == 10


class TestPlacementRule3:
    def test_bottom_quarter_hides_windows(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(30))
        col.place(w1)
        w2 = Window(2, "/b", lines(30))
        col.place(w2)  # rule 2: halves w1 -> w2 at y0+10, full below
        w3 = Window(3, "/c", lines(30))
        col.place(w3)  # w2's half would be y0+15, leaving 5 rows >= MIN; ok
        w4 = Window(4, "/d", lines(30))
        col.place(w4)
        # every placement keeps at least the tag row for visible windows
        for w in col.visible():
            assert col.win_rect(w).height >= 1
        assert not w4.hidden

    def test_rule3_hides_lowest(self):
        col = make_column(height=8)  # tiny column forces rule 3 fast
        wins = [Window(i, f"/w{i}", lines(20)) for i in range(4)]
        for w in wins:
            col.place(w)
        assert any(w.hidden for w in wins[:-1])
        assert not wins[-1].hidden
        assert col.win_rect(wins[-1]).height >= MIN_NEW_ROWS


class TestInvariants:
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=12),
           st.integers(6, 40))
    def test_visible_tags_always_on_screen(self, body_sizes, height):
        """After any sequence of placements, every visible window shows
        at least its tag, extents tile without overlap, and the last
        placed window is visible (the paper's guarantees)."""
        col = make_column(height=height)
        for i, n in enumerate(body_sizes):
            col.place(Window(i, f"/w{i}", lines(n)))
        vis = col.visible()
        assert vis, "column may not end up empty"
        prev_bottom = None
        for w in vis:
            rect = col.win_rect(w)
            assert rect.height >= 1
            assert col.rect.y0 <= rect.y0 < col.rect.y1
            assert rect.y1 <= col.rect.y1
            if prev_bottom is not None:
                assert rect.y0 == prev_bottom
            prev_bottom = rect.y1
        assert prev_bottom == col.rect.y1

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=12))
    def test_newly_placed_window_never_hidden(self, body_sizes):
        col = make_column(height=12)
        last = None
        for i, n in enumerate(body_sizes):
            last = Window(i, f"/w{i}", lines(n))
            col.place(last)
            assert not last.hidden


class TestMakeVisible:
    def test_tab_click_reveals_hidden(self):
        col = make_column(height=8)
        wins = [Window(i, f"/w{i}", lines(20)) for i in range(4)]
        for w in wins:
            col.place(w)
        hidden = next(w for w in wins if w.hidden)
        col.make_visible(hidden)
        assert not hidden.hidden
        rect = col.win_rect(hidden)
        assert rect.y1 == col.rect.y1  # extends to the bottom

    def test_covers_windows_below(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(3))
        w2 = Window(2, "/b", lines(3))
        col.place(w1)
        col.place(w2)
        col.make_visible(w1)
        assert w2.hidden
        assert col.win_rect(w1).y1 == col.rect.y1

    def test_unknown_window_rejected(self):
        col = make_column()
        try:
            col.make_visible(Window(9, "/x"))
            assert False, "expected ValueError"
        except ValueError:
            pass


class TestMoveAndRemove:
    def test_move_within_column(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(3))
        w2 = Window(2, "/b", lines(3))
        col.place(w1)
        col.place(w2)
        col.move_to(w2, col.rect.y0)  # drag w2 to the top
        assert w2.y == col.rect.y0
        assert w1.y > w2.y  # w1 pushed down to keep its tag visible

    def test_move_clamps_to_column(self):
        col = make_column(height=20)
        w = Window(1, "/a")
        col.place(w)
        col.move_to(w, 999)
        assert w.y == col.rect.y1 - 1

    def test_move_joining_window(self):
        col = make_column()
        w = Window(1, "/a")
        col.move_to(w, 5)
        assert w in col.windows

    def test_remove(self):
        col = make_column()
        w = Window(1, "/a")
        col.place(w)
        col.remove(w)
        assert col.windows == []

    def test_resize_refits(self):
        col = make_column(height=30)
        wins = [Window(i, f"/w{i}", lines(5)) for i in range(3)]
        for w in wins:
            col.place(w)
        col.resize(Rect(0, 1, 40, 7))
        for w in col.visible():
            rect = col.win_rect(w)
            assert rect.height >= 1
            assert rect.y1 <= 7


class TestHitTesting:
    def test_tab_order_includes_hidden(self):
        col = make_column(height=8)
        wins = [Window(i, f"/w{i}", lines(20)) for i in range(4)]
        for w in wins:
            col.place(w)
        assert set(col.tab_order()) == set(wins)

    def test_tab_at(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(2))
        w2 = Window(2, "/b", lines(2))
        col.place(w1)
        col.place(w2)
        order = col.tab_order()
        assert col.tab_at(col.rect.y0) is order[0]
        assert col.tab_at(col.rect.y0 + 1) is order[1]
        assert col.tab_at(col.rect.y0 + 2) is None

    def test_window_at_rows(self):
        col = make_column(height=20)
        w1 = Window(1, "/a", lines(3))
        w2 = Window(2, "/b", lines(2))
        col.place(w1)
        col.place(w2)
        assert col.window_at(w1.y) is w1
        assert col.window_at(w2.y) is w2
        assert col.window_at(w2.y - 1) is w1

    def test_body_frame_none_for_hidden(self):
        col = make_column(height=8)
        wins = [Window(i, f"/w{i}", lines(20)) for i in range(4)]
        for w in wins:
            col.place(w)
        hidden = next(w for w in wins if w.hidden)
        assert col.body_frame(hidden) is None
        assert col.win_rect(hidden) is None
