"""Tests for the ASCII screenshot renderer."""

from repro.core.render import render_screen, render_window


class TestRenderScreen:
    def test_empty_screen_has_header_and_strips(self, app):
        shot = render_screen(app, footer=False)
        lines = shot.split("\n")
        assert lines[0].count("#") == 2  # one expand square per column
        assert all(line.startswith(("|", "#")) for line in lines[1:] if line)

    def test_window_tag_and_body_rendered(self, app):
        app.new_window("/tmp/f", "hello body\n")
        shot = render_screen(app, footer=False)
        assert "[/tmp/f Close! Get!" in shot
        assert "hello body" in shot

    def test_tab_per_window(self, app):
        col = app.screen.columns[0]
        for i in range(3):
            app.new_window(f"/tmp/w{i}", "x\n", column=col)
        shot = render_screen(app, footer=False)
        lines = shot.split("\n")
        tower = [lines[col.rect.y0 + i][col.rect.x0] for i in range(4)]
        assert tower == ["#", "#", "#", "|"]

    def test_footer_reports_selection(self, app):
        w = app.new_window("/tmp/f", "choose me")
        app.select(w, 0, 6)
        shot = render_screen(app)
        assert "'choose'" in shot
        assert f"window {w.id}" in shot

    def test_footer_no_selection(self, app):
        assert "no selection" in render_screen(app)

    def test_long_selection_truncated_in_footer(self, app):
        w = app.new_window("/tmp/f", "x" * 100)
        app.select(w, 0, 100)
        assert "..." in render_screen(app)

    def test_hidden_window_not_rendered(self, app):
        col = app.screen.columns[0]
        body = "".join(f"l{i}\n" for i in range(60))
        wins = [app.new_window(f"/tmp/w{i}", body, column=col)
                for i in range(6)]
        hidden = [w for w in wins if w.hidden]
        assert hidden
        shot = render_screen(app, footer=False)
        for w in hidden:
            assert f"[{w.name()} " not in shot

    def test_grid_width_respected(self, app):
        app.new_window("/tmp/longname-" + "x" * 200, "y" * 200)
        shot = render_screen(app, footer=False)
        assert all(len(line) <= app.screen.rect.width
                   for line in shot.split("\n"))

    def test_scrolled_window_shows_from_origin(self, app):
        w = app.new_window("/tmp/f", "first\nsecond\nthird\n")
        w.org = 6  # start of "second"
        shot = render_screen(app, footer=False)
        assert "second" in shot
        assert "first" not in shot


class TestRenderWindow:
    def test_single_window(self, app):
        w = app.new_window("/tmp/f", "alpha\nbeta\n")
        out = render_window(app, w)
        lines = out.split("\n")
        assert lines[0].startswith("/tmp/f")
        assert "alpha" in out and "beta" in out

    def test_hidden_window(self, app):
        col = app.screen.columns[0]
        body = "".join(f"l{i}\n" for i in range(60))
        wins = [app.new_window(f"/tmp/w{i}", body, column=col)
                for i in range(6)]
        hidden = next(w for w in wins if w.hidden)
        assert "(hidden)" in render_window(app, hidden)

    def test_unplaced_window(self, app):
        from repro.core.window import Window
        assert render_window(app, Window(99, "/x")) == ""
