"""The MetricsRegistry: thread safety, bounded reservoirs, the shim.

The session-scoped architecture hangs off three properties proved
here: ``incr`` is atomic under contention (the mux worker pool bumps
shared counters concurrently), histograms hold bounded memory however
long a host runs, and the module-level shim routes every legacy call
site to whichever registry is active for the calling context.
"""

from __future__ import annotations

import threading

import pytest

from repro.metrics.counter import (
    RESERVOIR_CAP,
    MetricsRegistry,
    Reservoir,
    counter,
    current_registry,
    incr,
    percentile,
    set_default_registry,
    use_registry,
)


# -- the lost-update stress test ----------------------------------------------


def test_threaded_incr_loses_no_updates():
    """N threads x M increments must land exactly N*M.

    Before the registry, ``incr`` was an unlocked read-modify-write on
    a module dict; under the wire layer's worker pool two RPCs could
    interleave the read and the write and drop increments.  This is
    the regression test: any lost update breaks the exact total.
    """
    registry = MetricsRegistry("stress")
    threads, per_thread = 8, 5_000

    def hammer():
        for _ in range(per_thread):
            registry.incr("stress.count")
            registry.observe("stress.sample", 1.0)

    pool = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert registry.counter("stress.count") == threads * per_thread
    assert registry.histogram("stress.sample")["count"] == threads * per_thread


def test_threaded_shim_respects_per_thread_binding():
    """Each thread's use_registry binding routes only its own calls."""
    registries = [MetricsRegistry(f"t{i}") for i in range(4)]

    def work(registry):
        with use_registry(registry):
            for _ in range(1_000):
                incr("bound.count")

    pool = [threading.Thread(target=work, args=(r,)) for r in registries]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    for registry in registries:
        assert registry.counter("bound.count") == 1_000


# -- counters -----------------------------------------------------------------


def test_counter_basics_and_prefix_reset():
    registry = MetricsRegistry()
    registry.incr("a.one")
    registry.incr("a.two", 5)
    registry.incr("b.one")
    assert registry.counter("a.two") == 5
    assert registry.counters("a.") == {"a.one": 1, "a.two": 5}
    registry.reset_counters("a.")
    assert registry.counters("a.") == {}
    assert registry.counter("b.one") == 1
    registry.reset_counters()
    assert registry.counters() == {}


def test_hit_rate():
    registry = MetricsRegistry()
    assert registry.hit_rate() is None
    registry.incr("layout.cache_hit", 3)
    registry.incr("layout.cache_miss", 1)
    assert registry.hit_rate() == 0.75


# -- bounded histograms -------------------------------------------------------


def test_reservoir_stays_bounded():
    """A million observations keep at most RESERVOIR_CAP samples."""
    registry = MetricsRegistry()
    for i in range(100_000):
        registry.observe("lat", float(i))
    reservoir = registry._reservoirs["lat"]
    assert len(reservoir.samples) < RESERVOIR_CAP
    stats = registry.histogram("lat")
    # the exact moments never decay
    assert stats["count"] == 100_000
    assert stats["min"] == 0.0
    assert stats["max"] == 99_999.0
    assert stats["mean"] == pytest.approx(49_999.5)


def test_reservoir_quantiles_stay_accurate_past_the_cap():
    """Stride decimation is a systematic sample: quantiles hold."""
    registry = MetricsRegistry()
    n = 50_000
    for i in range(n):
        registry.observe("lat", float(i))
    stats = registry.histogram("lat")
    # within 1% of the true quantile despite keeping ~2k of 50k samples
    assert stats["p50"] == pytest.approx(n * 0.50, rel=0.01)
    assert stats["p95"] == pytest.approx(n * 0.95, rel=0.01)
    assert stats["p99"] == pytest.approx(n * 0.99, rel=0.01)


def test_histogram_report_shape_is_stable():
    """The summary keys existing benches consume are all present."""
    registry = MetricsRegistry()
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.observe("op", value)
    stats = registry.histogram("op")
    assert set(stats) == {"count", "min", "max", "mean", "p50", "p95", "p99"}
    assert stats["count"] == 4
    assert stats["p50"] == pytest.approx(2.5)
    assert registry.histogram("never") is None
    registry.reset_histograms()
    assert registry.histograms() == {}


def test_percentile_linear_interpolation_unchanged():
    assert percentile([1.0], 0.5) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 0.0) == 1.0  # sorts first
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_reservoir_fold_merges_exact_moments():
    a, b = Reservoir(), Reservoir()
    for i in range(10):
        a.add(float(i))
    for i in range(10, 20):
        b.add(float(i))
    a.fold(b)
    assert a.count == 20
    assert a.minimum == 0.0 and a.maximum == 19.0
    assert a.total == pytest.approx(sum(range(20)))


# -- the default/active plumbing ----------------------------------------------


def test_module_shim_routes_to_active_registry():
    mine = MetricsRegistry("mine")
    incr("shim.count")  # default registry (the test fixture's)
    with use_registry(mine):
        incr("shim.count", 2)
        assert current_registry() is mine
    assert mine.counter("shim.count") == 2
    assert counter("shim.count") == 1
    assert current_registry() is not mine


def test_use_registry_nests_and_restores():
    outer, inner = MetricsRegistry("outer"), MetricsRegistry("inner")
    with use_registry(outer):
        with use_registry(inner):
            incr("n")
            assert current_registry() is inner
        incr("n")
        assert current_registry() is outer
    assert inner.counter("n") == 1
    assert outer.counter("n") == 1


def test_set_default_registry_swaps_and_returns_previous():
    fresh = MetricsRegistry("fresh")
    previous = set_default_registry(fresh)
    try:
        incr("swapped")
        assert fresh.counter("swapped") == 1
        assert previous.counter("swapped") == 0
    finally:
        set_default_registry(previous)


def test_merge_folds_counters_and_histograms():
    target, source = MetricsRegistry("a"), MetricsRegistry("b")
    target.incr("shared", 1)
    source.incr("shared", 2)
    source.incr("only.b", 3)
    source.observe("lat", 10.0)
    target.merge(source)
    assert target.counter("shared") == 3
    assert target.counter("only.b") == 3
    assert target.histogram("lat")["count"] == 1
    # the source is untouched
    assert source.counter("shared") == 2
