"""Tests for the interaction-cost models."""

import pytest

from repro.metrics import InteractionStats, KLM_TIMES, Script
from repro.metrics.baseline import (
    ALL_TASKS,
    comparison_table,
    cut_selection,
    cut_via_word,
    fetch_declaration,
    open_file_by_pointing,
    run_build,
)
from repro.metrics.klm import Action, Op, help_chord, help_click, script_time


class TestInteractionStats:
    def test_press_counts(self):
        stats = InteractionStats()
        stats.press("left")
        stats.press("middle")
        stats.press("middle")
        assert stats.button_presses == 3
        assert stats.middle_clicks == 2

    def test_keys(self):
        stats = InteractionStats()
        stats.keys(5)
        stats.keys(0)
        assert stats.keystrokes == 5
        assert stats.touched_keyboard
        assert "type:5" in stats.gestures
        assert "type:0" not in stats.gestures

    def test_reset(self):
        stats = InteractionStats()
        stats.press("left")
        stats.keys(3)
        stats.reset()
        assert stats.button_presses == 0
        assert stats.keystrokes == 0
        assert stats.gestures == []
        assert not stats.touched_keyboard

    def test_note(self):
        stats = InteractionStats()
        stats.note("execute:Open")
        assert stats.gestures == ["execute:Open"]


class TestKLM:
    def test_operator_times_positive(self):
        assert all(t > 0 for t in KLM_TIMES.values())
        assert KLM_TIMES[Op.P] > KLM_TIMES[Op.B]

    def test_action_seconds(self):
        assert Action(Op.K, 10).seconds == pytest.approx(2.8)

    def test_script_accumulates(self):
        script = Script("t").add(Op.P).add(Op.B, 2)
        assert script.seconds == pytest.approx(1.1 + 0.2)
        assert script.clicks == 1
        assert script.count(Op.P) == 1

    def test_script_time_function(self):
        assert script_time([Action(Op.B, 4)]) == pytest.approx(0.4)

    def test_report_format(self):
        script = Script("demo").add(Op.B, 2).add(Op.K, 3)
        report = script.report()
        assert "demo" in report
        assert "1 clicks" in report
        assert "3 keystrokes" in report

    def test_help_click_shape(self):
        script = help_click(Script("x"), "target")
        assert script.count(Op.P) == 1
        assert script.count(Op.B) == 2

    def test_help_chord_shape(self):
        script = help_chord(Script("x"), "chord")
        assert script.count(Op.P) == 0
        assert script.count(Op.B) == 2


class TestBaselines:
    @pytest.mark.parametrize("task", sorted(ALL_TASKS))
    def test_help_never_slower(self, task):
        ours, baseline = ALL_TASKS[task]()
        assert ours.seconds <= baseline.seconds + 0.011, task

    def test_help_never_types(self):
        for task, build in ALL_TASKS.items():
            ours, _ = build()
            assert ours.keystrokes == 0, task

    def test_baselines_type_or_point(self):
        for task, build in ALL_TASKS.items():
            _, baseline = build()
            assert baseline.keystrokes > 0 or baseline.count(Op.P) > 0, task

    def test_comparison_table_shape(self):
        rows = comparison_table()
        assert len(rows) == len(ALL_TASKS)
        for name, ours, theirs, speedup in rows:
            assert speedup == pytest.approx(theirs / ours)
            assert speedup >= 1.0

    def test_chord_beats_word_click(self):
        chord, _ = cut_selection()
        word, _ = cut_via_word()
        assert chord.seconds < word.seconds

    def test_decl_baseline_is_typed(self):
        _, baseline = fetch_declaration()
        assert baseline.keystrokes >= len("grep -n n *.c\n")

    def test_build_task(self):
        ours, baseline = run_build()
        assert ours.clicks == 1
        assert baseline.keystrokes == len("make\n")

    def test_open_task_parameterized(self):
        _, short = open_file_by_pointing("/a")
        _, long = open_file_by_pointing("/very/long/path/to/file.c")
        assert long.seconds > short.seconds
