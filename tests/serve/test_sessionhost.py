"""Session isolation: N worlds behind one wire server.

The load-bearing scenario is the ISSUE's: two sessions attach to the
same TCP server, mutate same-named files inside their own namespaces
(each session journals to its own ``/tmp/session.<id>.journal``), a
fault is injected into one of them — and the other's screen, journal
and counter ledger never notice.  The hibernation tests cover the
lifecycle fixes: evict/close double-count, torn ``srv/sessions``
reads, stale parked unames, and the hibernate/wake round trip.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fs.errors import Busy, Closed, Invalid, IOFault, NotFound
from repro.fs.faults import Fault, FaultPlan
from repro.fs.mux import MuxClient, dial, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.serve import SessionHost, input_line


def _attach(host, aname, addr=None):
    """Attach one session; returns (client, namespace-with-/s-mount)."""
    channel = dial(*addr) if addr is not None else host.pipe()
    client = MuxClient(channel, aname=aname)
    ns = Namespace(VFS())
    ns.mkdir("/s", parents=True)
    ns.mount(mount_remote(client), "/s")
    return client, ns


def _newwin(tag, body):
    return input_line("newwin", ("-", "-", "-", tag, body))


def _ledger(ns):
    out = {}
    for line in ns.read("/s/metrics").splitlines():
        name, _, value = line.rpartition(" ")
        out[name] = int(value)
    return out


def test_two_tcp_sessions_isolated_under_fault():
    """Alice's world is untouched by the victim's injected fault."""
    def plan_for(session_id):
        if session_id == "victim":
            # the victim's second screen open dies with an I/O fault
            return FaultPlan(Fault(op="open", path="/screen", at=2))
        return None

    host = SessionHost(width=100, height=40, plan_for=plan_for)
    addr = host.listen()
    try:
        alice, alice_ns = _attach(host, "alice", addr)
        victim, victim_ns = _attach(host, "victim", addr)
        try:
            # both sessions write the same-named window into their own
            # namespaces; alice writes one more than the victim
            alice_ns.append("/s/input", _newwin("/tmp/note", "alice text"))
            alice_ns.append("/s/input", _newwin("/tmp/more", "alice again"))
            victim_ns.append("/s/input", _newwin("/tmp/note", "victim text"))

            alice_screen = alice_ns.read("/s/screen")
            assert "alice text" in alice_screen
            assert "victim text" not in alice_screen

            assert victim_ns.read("/s/screen").count("victim text") >= 1
            with pytest.raises(IOFault):
                victim_ns.read("/s/screen")       # the scheduled fault

            # the fault landed in the victim's ledger, nobody else's
            assert _ledger(victim_ns).get("fs.fault.injected") == 1
            alice_ledger = _ledger(alice_ns)
            assert "fs.fault.injected" not in alice_ledger
            assert alice_ledger["session.input.applied"] == 2
            assert _ledger(victim_ns)["session.input.applied"] == 1

            # each journal holds only its own session's records
            assert alice_ns.read("/s/journal").count("newwin") == 2
            assert victim_ns.read("/s/journal").count("newwin") == 1

            # alice keeps working after the victim's fault
            assert "alice again" in alice_ns.read("/s/screen")
        finally:
            alice.close()
            victim.close()
    finally:
        host.close()
    assert host.audit() == []
    assert host.metrics.counter("host.sessions.opened") == 2
    assert host.metrics.counter("host.sessions.closed") == 2
    assert host.metrics.counter("host.sessions.bleed") == 0


def test_evict_via_control_file():
    """A session can evict another through srv/sessions; reads then
    raise Closed on the evicted side only."""
    host = SessionHost()
    try:
        _a, a_ns = _attach(host, "a")
        _b, b_ns = _attach(host, "b")
        b_ns.append("/s/srv/sessions", "evict a\n")
        with pytest.raises(Closed):
            a_ns.read("/s/screen")
        assert b_ns.read("/s/id") == "b\n"
        # the listing no longer shows the evicted session
        assert [line.split("\t")[0]
                for line in b_ns.read("/s/srv/sessions").splitlines()] == ["b"]
    finally:
        host.close()
    assert host.audit() == []
    assert host.metrics.counter("host.sessions.evicted") == 1


def test_control_file_list_stat_and_errors():
    host = SessionHost()
    try:
        _client, ns = _attach(host, "carol")
        listing = ns.read("/s/srv/sessions")
        assert listing.startswith("carol\t")
        assert "windows=" in listing and "records=" in listing

        ns.append("/s/srv/sessions", "stat carol\n")
        # a fresh open re-reads the listing; stat needs one handle, so
        # drive the control session directly
        session = host.control_file().open("rw")
        session.write("stat carol\n")
        stat = session.read()
        session.close()
        assert "id carol\n" in stat
        assert "state live\n" in stat
        assert "screen 100x40\n" in stat

        with pytest.raises(NotFound):
            ns.append("/s/srv/sessions", "stat nobody\n")
        with pytest.raises(NotFound):
            ns.append("/s/srv/sessions", "evict nobody\n")
        with pytest.raises(Invalid):
            ns.append("/s/srv/sessions", "frobnicate carol\n")
    finally:
        host.close()


def test_connection_drop_tears_the_session_down():
    """Dropping the wire retires the session — no leak, ledger balanced."""
    host = SessionHost()
    try:
        client, ns = _attach(host, "dropper")
        assert ns.read("/s/id") == "dropper\n"
        client.close()
        deadline = time.monotonic() + 5.0
        while (host.metrics.counter("host.sessions.closed") < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert host.metrics.counter("host.sessions.closed") == 1
        assert "dropper" not in host.sessions
    finally:
        host.close()
    assert host.audit() == []


def test_duplicate_session_name_is_busy():
    host = SessionHost()
    try:
        _client, _ns = _attach(host, "taken")
        with pytest.raises(Busy):
            _attach(host, "taken")
    finally:
        host.close()


def test_unnamed_attaches_get_generated_ids():
    host = SessionHost()
    try:
        _c1, ns1 = _attach(host, "")
        _c2, ns2 = _attach(host, "")
        ids = {ns1.read("/s/id").strip(), ns2.read("/s/id").strip()}
        assert len(ids) == 2
        assert all(sid.startswith("s") for sid in ids)
    finally:
        host.close()
    assert host.audit() == []


def test_bad_input_kind_is_invalid_and_not_applied():
    host = SessionHost()
    try:
        _client, ns = _attach(host, "strict")
        with pytest.raises(Invalid):
            ns.append("/s/input", "levitate now\n")
        with pytest.raises(ValueError):
            input_line("levitate", ())
        assert "session.input.applied" not in _ledger(ns)
    finally:
        host.close()


def test_evict_racing_a_close_counts_once():
    """An evict that loses the race to a close must not move the
    ``host.sessions.evicted`` counter — the ledger counts retirements,
    not attempts."""
    host = SessionHost()
    try:
        _client, ns = _attach(host, "racer")
        assert ns.read("/s/id") == "racer\n"
        session = host.sessions["racer"]
        # simulate the race: a concurrent close has just flipped the
        # flag but the evict call is already past its lookup
        session.closed = True
        host.evict("racer")
        assert host.metrics.counter("host.sessions.evicted") == 0
        # the loser still removed the wire registration; a real close
        # balances the opened/closed ledger for the audit
        session.closed = False
        session.close()
    finally:
        host.close()
    assert host.audit() == []


def test_stat_and_list_never_block_on_a_busy_session(monkeypatch):
    """srv/sessions reads must not tear or block while a session is
    mid-input: the row degrades to ``state busy`` instead."""
    import repro.serve.host as host_mod
    real = host_mod.apply_record
    started = threading.Event()
    release = threading.Event()

    def gated(help_obj, record):
        started.set()
        assert release.wait(5)
        return real(help_obj, record)

    monkeypatch.setattr(host_mod, "apply_record", gated)
    host = SessionHost()
    try:
        _client, ns = _attach(host, "busy1")
        writer = threading.Thread(
            target=ns.append,
            args=("/s/input", _newwin("/tmp/slow", "slow write")),
            daemon=True)
        writer.start()
        assert started.wait(5)
        # the input holds busy1's oplock; stat and list answer anyway
        stat = host._stat_text("busy1")
        assert "state busy\n" in stat
        row = [line for line in host._list_text().splitlines()
               if line.startswith("busy1\t")][0]
        assert "\tbusy\t" in row
        assert "windows=?" in row
        release.set()
        writer.join(timeout=5)
        assert not writer.is_alive()
        # quiescent again: the real row comes back
        assert "state live\n" in host._stat_text("busy1")
        assert "windows=?" not in host._list_text()
        assert "records=2" in host._list_text()
    finally:
        release.set()
        host.close()
    assert host.audit() == []


def test_claiming_a_parked_session_takes_the_claimer_uname():
    """A migrated session parked under its old owner must show the
    claimer's identity once claimed — not the stale uname."""
    host = SessionHost()
    try:
        host.adopt("moved", "old-owner", None)
        before = host._stat_text("moved")
        assert "user old-owner\n" in before
        assert "state parked\n" in before
        channel = host.pipe()
        client = MuxClient(channel, uname="new-owner", aname="moved")
        try:
            after = host._stat_text("moved")
            assert "user new-owner\n" in after
            assert "state live\n" in after
            assert "\tnew-owner\tlive\t" in host._list_text()
        finally:
            client.close()
    finally:
        host.close()
    assert host.audit() == []
    assert host.metrics.counter("host.sessions.claimed") == 1


def test_hibernate_wake_round_trip_is_byte_identical():
    """A hibernated session's next attach wakes it to the same screen,
    and the wake ledger records the journey."""
    host = SessionHost(max_live=4)
    try:
        _client, ns = _attach(host, "sleeper")
        ns.append("/s/input", _newwin("/tmp/keep", "text that must survive"))
        golden = ns.read("/s/screen")
        host.hibernate("sleeper")
        assert "sleeper" in host.hibernated
        assert host.hibernated["sleeper"].exists()
        stat = host._stat_text("sleeper")
        assert "state hibernated\n" in stat
        assert "\thibernated\t" in host._list_text()
        # the world is gone; only the snapshot file remains
        assert "sleeper" not in host.sessions

        _client2, ns2 = _attach(host, "sleeper")
        assert ns2.read("/s/screen") == golden
        assert "sleeper" not in host.hibernated
        assert host.metrics.counter("host.sessions.woken") == 1
        assert host.metrics.histogram("host.wake_us")["count"] == 1
    finally:
        host.close()
    assert host.audit() == []


def test_connection_drop_hibernates_under_a_budget():
    """With max_live set, a dropped connection parks the session on
    disk instead of retiring it — the user went nominal, not away."""
    host = SessionHost(max_live=2)
    try:
        client, ns = _attach(host, "nominal")
        ns.append("/s/input", _newwin("/tmp/keep", "still here later"))
        golden = ns.read("/s/screen")
        client.close()
        deadline = time.monotonic() + 5.0
        while (host.metrics.counter("host.sessions.hibernated") < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert host.metrics.counter("host.sessions.hibernated") == 1
        assert "nominal" in host.hibernated
        _client2, ns2 = _attach(host, "nominal")
        assert ns2.read("/s/screen") == golden
    finally:
        host.close()
    assert host.audit() == []


def test_lru_budget_hibernates_the_oldest_session():
    """The third attach under a two-world budget parks the session
    whose last input is oldest."""
    host = SessionHost(max_live=2)
    try:
        _a, a_ns = _attach(host, "old")
        a_ns.append("/s/input", _newwin("/tmp/a", "oldest"))
        _b, b_ns = _attach(host, "mid")
        b_ns.append("/s/input", _newwin("/tmp/b", "newer"))
        _c, c_ns = _attach(host, "new")
        assert c_ns.read("/s/id") == "new\n"
        # "old" was least recently used: it went to disk
        assert "old" in host.hibernated
        assert "mid" in host.sessions and "new" in host.sessions
        assert host.live_peak <= 2
        # its connection now sees Closed; a fresh attach wakes it
        with pytest.raises(Closed):
            a_ns.read("/s/screen")
        _a2, a2_ns = _attach(host, "old")
        assert "oldest" in a2_ns.read("/s/screen")
    finally:
        host.close()
    assert host.audit() == []


def test_sessions_journal_to_distinct_paths():
    """Two concurrent journalled sessions must not share a journal
    file — the old shared /tmp/session.journal was cross-talk."""
    from repro.serve.host import journal_path

    assert journal_path("a") != journal_path("b")
    host = SessionHost()
    try:
        _a, a_ns = _attach(host, "one")
        _b, b_ns = _attach(host, "two")
        a_ns.append("/s/input", _newwin("/tmp/x", "first session"))
        b_ns.append("/s/input", _newwin("/tmp/x", "second session"))
        assert a_ns.read("/s/journal").count("newwin") == 1
        assert b_ns.read("/s/journal").count("newwin") == 1
    finally:
        host.close()
    assert host.audit() == []


def test_drain_folds_every_ledger_into_one():
    """drain() hands benches the complete cross-session ledger."""
    from repro.metrics.counter import MetricsRegistry

    host = SessionHost()
    try:
        alice, alice_ns = _attach(host, "alice")
        alice_ns.append("/s/input", _newwin("/tmp/x", "hi"))
        bob, bob_ns = _attach(host, "bob")
        bob_ns.append("/s/input", _newwin("/tmp/x", "yo"))
        alice.close()
        bob.close()
    finally:
        host.close()
    total = host.drain(into=MetricsRegistry("roll-up"))
    assert total.counter("session.input.applied") == 2
    assert total.counter("host.sessions.opened") == 2
    assert total.counter("host.sessions.closed") == 2
    assert total.histogram("session.apply_us")["count"] == 2
