"""Sharded hosting: attach routing, federation, live drain.

The router's one promise is that sharding is invisible: a session
behaves identically whichever shard serves it, ``srv/sessions`` spans
every shard, and a drain — even one racing an in-flight write — moves
the session without losing a record.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fs.errors import Closed, NotFound
from repro.fs.mux import MuxClient, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.serve import ShardRouter, input_line


def _attach(router, aname):
    client = MuxClient(router.pipe(), aname=aname)
    ns = Namespace(VFS())
    ns.mkdir("/s", parents=True)
    ns.mount(mount_remote(client), "/s")
    return client, ns


def _newwin(tag, body):
    return input_line("newwin", ("-", "-", "-", tag, body))


def _two_names_on_different_shards(router):
    """Two attach names the hash sends to different shards."""
    first = "u0"
    for i in range(1, 64):
        if router.shard_for(f"u{i}") != router.shard_for(first):
            return first, f"u{i}"
    raise AssertionError("crc32 never split 64 names across shards")


class TestPlacement:
    def test_hash_is_deterministic_and_spreads(self):
        with ShardRouter(shards=4) as router:
            home = router.shard_for("alice")
            assert all(router.shard_for("alice") == home
                       for _ in range(8))
            spread = {router.shard_for(f"user{i}") for i in range(64)}
            assert spread == {0, 1, 2, 3}

    def test_anonymous_attaches_round_robin(self):
        with ShardRouter(shards=3) as router:
            assert [router.shard_for("") for _ in range(6)] == \
                [0, 1, 2, 0, 1, 2]

    def test_draining_shard_is_excluded(self):
        with ShardRouter(shards=3) as router:
            home = router.shard_for("alice")
            router.drain_shard(home)  # empty shard: nothing to migrate
            assert router.shard_for("alice") != home
            assert home not in {router.shard_for("") for _ in range(9)}


class TestFederation:
    def test_control_file_spans_shards(self):
        router = ShardRouter(shards=2)
        try:
            a_name, b_name = _two_names_on_different_shards(router)
            _a, a_ns = _attach(router, a_name)
            b_client, b_ns = _attach(router, b_name)
            # the listing read through either shard names both sessions
            ids = [line.split("\t")[0]
                   for line in a_ns.read("/s/srv/sessions").splitlines()]
            assert sorted(ids) == sorted([a_name, b_name])
            # stat reaches across shards and names the owner
            session = router.hosts[0].control_file().open("rw")
            session.write(f"stat {b_name}\n")
            stat = session.read()
            session.close()
            assert f"id {b_name}\n" in stat
            assert f"shard {router.shard_for(b_name)}\n" in stat
            # evict reaches across shards too
            a_ns.append("/s/srv/sessions", f"evict {b_name}\n")
            with pytest.raises(Closed):
                b_ns.read("/s/screen")
            with pytest.raises(NotFound):
                a_ns.append("/s/srv/sessions", f"evict {b_name}\n")
        finally:
            router.close()
        assert router.audit() == []

    def test_anonymous_ids_carry_the_shard_prefix(self):
        router = ShardRouter(shards=2)
        try:
            _a, a_ns = _attach(router, "")
            _b, b_ns = _attach(router, "")
            a_id = a_ns.read("/s/id").strip()
            b_id = b_ns.read("/s/id").strip()
            assert a_id != b_id
            assert a_id.startswith("sh") and b_id.startswith("sh")
        finally:
            router.close()


class TestDrain:
    def test_drain_migrates_screen_byte_identically(self):
        router = ShardRouter(shards=2)
        try:
            _client, ns = _attach(router, "mover")
            home = router.shard_for("mover")
            ns.append("/s/input", _newwin("/tmp/note", "carried text\n"))
            before = ns.read("/s/screen")
            assert router.drain_shard(home) == ["mover"]
            with pytest.raises(Closed):
                ns.read("/s/screen")  # the old shard's session is gone
            _client2, ns2 = _attach(router, "mover")
            assert router.shard_for("mover") != home
            assert ns2.read("/s/screen") == before
        finally:
            router.close()
        assert router.audit() == []
        opened, closed = router.session_ledger()
        assert opened == closed
        assert router.metrics.counter("router.sessions.migrated") == 1

    def test_drain_relocates_hibernated_sessions_as_files(self):
        """A drained shard's nominal users move too: the snapshot file
        changes spools without the world ever becoming resident, and
        the next attach wakes it on the new shard byte-identically."""
        router = ShardRouter(shards=2, max_live=4)
        try:
            client, ns = _attach(router, "dormant")
            home = router.shard_for("dormant")
            ns.append("/s/input", _newwin("/tmp/note", "parked text\n"))
            before = ns.read("/s/screen")
            router.hibernate("dormant")
            assert "dormant" in router.hosts[home].hibernated
            assert "state hibernated" in router._stat_text("dormant")

            migrated = router.drain_shard(home)
            assert migrated == ["dormant"]
            target = 1 - home
            assert "dormant" in router.hosts[target].hibernated
            assert not router.hosts[home].hibernated
            assert router.hosts[target].metrics.counter(
                "host.sessions.hib.in") == 1
            assert router.metrics.counter("router.sessions.relocated") == 1

            _client2, ns2 = _attach(router, "dormant")
            assert ns2.read("/s/screen") == before
            assert router.hosts[target].metrics.counter(
                "host.sessions.woken") == 1
            client.close()
        finally:
            router.close()
        assert router.audit() == []

    def test_drain_during_in_flight_write_keeps_the_write(self, monkeypatch):
        """Migration takes the session's oplock, so a write racing the
        drain lands in the journal before the snapshot is taken — the
        migrated session must show its effect."""
        import repro.serve.host as host_mod
        real = host_mod.apply_record
        started = threading.Event()
        release = threading.Event()

        def gated(help_obj, record):
            started.set()
            assert release.wait(5)
            return real(help_obj, record)

        monkeypatch.setattr(host_mod, "apply_record", gated)
        router = ShardRouter(shards=2)
        try:
            _client, ns = _attach(router, "mover")
            home = router.shard_for("mover")
            result = {}

            def write():
                try:
                    ns.append("/s/input",
                              _newwin("/tmp/note", "survived the drain\n"))
                    result["ok"] = True
                except Closed as exc:
                    # the reply can race the post-migration teardown;
                    # the *write itself* already landed
                    result["error"] = exc

            writer = threading.Thread(target=write, daemon=True)
            writer.start()
            assert started.wait(5)
            drained = {}
            drainer = threading.Thread(
                target=lambda: drained.update(ids=router.drain_shard(home)),
                daemon=True)
            drainer.start()
            time.sleep(0.2)
            # the drain is parked on the session's oplock: the in-flight
            # write still owns it
            assert "ids" not in drained
            release.set()
            writer.join(5)
            drainer.join(5)
            assert drained.get("ids") == ["mover"]
            assert result, "writer never finished"
            # reattach on the new shard: the racing write is there
            _client2, ns2 = _attach(router, "mover")
            screen = ns2.read("/s/screen")
            assert "/tmp/note" in screen
            assert "survived the drain" in screen
        finally:
            router.close()
        assert router.audit() == []
