"""Journal-shipping replication: feed, standby, promotion, failover.

The load-bearing scenario is the ISSUE's: a primary host ships every
durable journal event to a standby in ``sync`` mode, the primary is
killed with no teardown whatsoever, the standby notices the feed
silence, is promoted, and the session's owner re-attaches to find the
screen byte-identical and every acknowledged write held — the
``inputs`` file is the proof.  The router tests cover the monitor
thread's end of it: detection, slot repointing, and the audit that
folds the standby's books in.
"""

from __future__ import annotations

import time

import pytest

from repro.fs import wire
from repro.fs.errors import Busy, FsError, IOFault
from repro.fs.mux import MuxClient, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.serve import SessionHost, ShardRouter, input_line
from repro.serve.replica import ReplicaFeed, ReplicaPair, ReplicaStandby

HEARTBEAT = 0.05


def _attach(host, aname):
    client = MuxClient(host.pipe(), aname=aname)
    ns = Namespace(VFS())
    ns.mkdir("/s", parents=True)
    ns.mount(mount_remote(client), "/s")
    return client, ns


def _newwin(tag, body):
    return input_line("newwin", ("-", "-", "-", tag, body))


def _wait(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def pair():
    primary = SessionHost(width=100, height=40)
    p = ReplicaPair(primary, mode="sync", heartbeat=HEARTBEAT,
                    standby_prefix="t.")
    yield p
    p.close()


class TestSyncShipping:
    def test_write_is_on_standby_before_ack(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "hello"))
        # sync mode: by the time the append returned, the standby
        # durably held the record — no quiesce needed
        state, records = pair.standby.tracked()["alice"]
        assert state == "live"
        assert records > 0
        m = pair.primary.metrics
        assert m.counter("replica.ship.frames") \
            == m.counter("replica.ack.frames") > 0
        assert (m.histogram("replica.lag_us") or {}).get("count")
        client.close()

    def test_standby_copy_tracks_the_journal(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "hello"))
        pair.feed.quiesce()
        sink = pair.primary.sessions["alice"].journal.sink
        assert pair.standby.journal_text("alice") == sink.ns.read(sink.path)
        client.close()

    def test_session_close_drops_the_copy(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "hello"))
        client.close()
        assert _wait(lambda: "alice" not in pair.standby.tracked())

    def test_primary_audit_balances(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "hello"))
        assert pair.primary.audit() == []
        client.close()

    def test_srv_replica_shows_the_feed(self, pair):
        client, ns = _attach(pair.primary, "alice")
        text = ns.read("/s/srv/replica")
        assert "role primary" in text and "mode sync" in text
        client.close()


class TestAsyncShipping:
    def test_queue_drains_in_order(self):
        primary = SessionHost(width=100, height=40)
        with ReplicaPair(primary, mode="async", heartbeat=HEARTBEAT,
                         standby_prefix="t.") as p:
            client, ns = _attach(primary, "alice")
            for i in range(3):
                ns.append("/s/input", _newwin(f"/tmp/n{i}", "x"))
            assert p.feed.quiesce()
            sink = primary.sessions["alice"].journal.sink
            assert p.standby.journal_text("alice") \
                == sink.ns.read(sink.path)
            m = primary.metrics
            assert m.counter("replica.ship.frames") \
                == m.counter("replica.ack.frames")
            client.close()


class TestStandbyHandler:
    def test_crc_mismatch_is_rejected_loudly(self):
        standby = ReplicaStandby(width=100, height=40, heartbeat=HEARTBEAT)
        try:
            with pytest.raises(IOFault):
                standby._on_ship(wire.Tship(sid="x", verb="reset", seq=1,
                                            crc=0xDEAD, data="abc"))
            assert standby.metrics.counter("replica.recv.crc_failed") == 1
            assert "x" not in standby.tracked()
        finally:
            standby.close()

    def test_orphan_append_waits_for_a_reset(self):
        standby = ReplicaStandby(width=100, height=40, heartbeat=HEARTBEAT)
        try:
            import zlib
            data = "1 x y\n"
            crc = zlib.crc32(data.encode()) & 0xFFFFFFFF
            standby._on_ship(wire.Tship(sid="x", verb="append", seq=1,
                                        crc=crc, data=data))
            assert standby.metrics.counter("replica.recv.orphan") == 1
            assert "x" not in standby.tracked()
        finally:
            standby.close()

    def test_heartbeats_keep_the_primary_alive(self, pair):
        assert _wait(lambda: pair.primary.metrics.counter(
            "replica.heartbeat.sent") >= 2)
        assert pair.standby.primary_alive(miss=3)


class TestFailover:
    def test_kill_detect_promote_screen_identical(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "the note body"))
        before = ns.read("/s/screen")
        inputs_acked = int(ns.read("/s/inputs"))
        assert inputs_acked > 0

        pair.kill_primary()
        assert _wait(lambda: not pair.standby.primary_alive(miss=3),
                     timeout=5.0)
        report = pair.promote()[1]
        assert report["sessions"] == 1 and report["live"] == 1
        assert report["problems"] == []

        client2, ns2 = _attach(pair.standby.host, "alice")
        assert int(ns2.read("/s/inputs")) >= inputs_acked
        assert ns2.read("/s/screen") == before
        assert pair.standby.host.audit() == []
        client2.close()

    def test_parked_sessions_promote_parked(self, pair):
        client, ns = _attach(pair.primary, "alice")
        ns.append("/s/input", _newwin("/tmp/note", "hello"))
        pair.primary.hibernate("alice")
        try:
            client.close()
        except (FsError, OSError):
            pass  # the hibernate tore the connection down first
        pair.feed.quiesce()
        assert pair.standby.tracked()["alice"][0] == "parked"

        pair.kill_primary()
        report = pair.promote()[1]
        assert report["parked"] == 1 and report["live"] == 0
        client2, ns2 = _attach(pair.standby.host, "alice")
        assert "the note body" not in ns2.read("/s/screen")  # fresh wake
        assert "note" in ns2.read("/s/screen")
        client2.close()

    def test_double_promote_is_busy(self, pair):
        pair.kill_primary()
        pair.promote()
        with pytest.raises(Busy):
            pair.standby.promote()

    def test_killed_primary_rejects_traffic(self, pair):
        client, ns = _attach(pair.primary, "alice")
        pair.kill_primary()
        with pytest.raises((FsError, OSError)):
            ns.append("/s/input", _newwin("/tmp/x", "y"))
            ns.read("/s/screen")
        client.close()


class TestRouterFailover:
    def test_monitor_detects_and_repoints(self):
        router = ShardRouter(shards=2, replicate=True,
                             heartbeat_interval=HEARTBEAT)
        try:
            client, ns = _attach(router, "alice")
            ns.append("/s/input", _newwin("/tmp/note", "body text"))
            before = ns.read("/s/screen")
            index = next(i for i, h in enumerate(router.hosts)
                         if "alice" in h.sessions)

            router.kill_shard(index)
            # the monitor thread notices the silence and promotes
            assert _wait(lambda: router.metrics.counter(
                "router.shards.promoted") == 1, timeout=10.0)
            assert router.hosts[index] is router.pairs[index].standby.host

            client2, ns2 = _attach(router, "alice")
            assert ns2.read("/s/screen") == before
            assert (router.metrics.histogram("router.failover_us")
                    or {}).get("count") == 1
            assert router.audit() == []
            client2.close()
        finally:
            router.close()

    def test_replicate_requires_journalling(self):
        with pytest.raises(ValueError):
            ShardRouter(shards=2, replicate=True, record=False)

    def test_kill_shard_without_replica_is_invalid(self):
        from repro.fs.errors import Invalid
        router = ShardRouter(shards=2)
        try:
            with pytest.raises(Invalid):
                router.kill_shard(0)
        finally:
            router.close()
